//! `sefi-ckpt` — checkpoint forensics & repair for the sectioned (v2)
//! format.
//!
//! ```text
//! sefi-ckpt scan <ckpt> [--sidecar <path>] [--json]
//! sefi-ckpt scan --fleet <dir> [--json]
//! sefi-ckpt locate <ckpt> <offset> [--json]
//! sefi-ckpt salvage <ckpt> --out <path> [--sidecar <path>] [--epoch <n>] [--json]
//! sefi-ckpt diff <a> <b> [--json]
//! sefi-ckpt protect <ckpt> [--out <path>] [--json]
//! sefi-ckpt mint <path> [--epoch <n>]
//! ```
//!
//! Exit codes: `0` clean / identical, `1` damage found (or repaired),
//! `2` unreadable input or usage error. Every subcommand looks for a
//! `<ckpt>.ecc` sidecar next to the checkpoint unless `--sidecar` names
//! one explicitly; a sidecar that does not bind is reported, not fatal.

use rayon::prelude::*;
use sefi_hdf5::forensics::{
    diff, locate_byte, salvage, scan_bytes, ByteLocation, DiffState, ScanReport, ScanStructure,
    SectionState,
};
use sefi_hdf5::{EccSidecar, FileIndex, H5File};
use std::path::{Path, PathBuf};
use std::process::exit;

const USAGE: &str = "sefi-ckpt — checkpoint forensics & repair (sectioned v2 format)

USAGE:
  sefi-ckpt scan <ckpt> [--sidecar <path>] [--json]
  sefi-ckpt scan --fleet <dir> [--json]
  sefi-ckpt locate <ckpt> <offset> [--json]
  sefi-ckpt salvage <ckpt> --out <path> [--sidecar <path>] [--epoch <n>] [--json]
  sefi-ckpt diff <a> <b> [--json]
  sefi-ckpt protect <ckpt> [--out <path>] [--json]
  sefi-ckpt mint <path> [--epoch <n>]

EXIT CODES: 0 clean/identical, 1 damage found, 2 unreadable input / usage";

fn fail(msg: &str) -> ! {
    eprintln!("sefi-ckpt: {msg}");
    exit(2);
}

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2);
}

/// Minimal JSON string escaping for hand-rolled output.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shared flag parser: strips known flags out of `args`, returns the
/// remaining positionals.
struct Flags {
    json: bool,
    fleet: Option<PathBuf>,
    sidecar: Option<PathBuf>,
    out: Option<PathBuf>,
    epoch: i64,
}

fn parse_flags(args: &[String]) -> (Flags, Vec<String>) {
    let mut flags = Flags { json: false, fleet: None, sidecar: None, out: None, epoch: 0 };
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .cloned()
                .unwrap_or_else(|| fail(&format!("{} needs a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--json" => flags.json = true,
            "--fleet" => flags.fleet = Some(PathBuf::from(take_value(&mut i))),
            "--sidecar" => flags.sidecar = Some(PathBuf::from(take_value(&mut i))),
            "--out" | "-o" => flags.out = Some(PathBuf::from(take_value(&mut i))),
            "--epoch" => {
                flags.epoch =
                    take_value(&mut i).parse().unwrap_or_else(|_| fail("--epoch needs an integer"))
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => fail(&format!("unknown flag {other}")),
            other => positionals.push(other.to_string()),
        }
        i += 1;
    }
    (flags, positionals)
}

fn read_file(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())))
}

/// Resolve the sidecar for a checkpoint: an explicit `--sidecar` must
/// load; the conventional `<ckpt>.ecc` is best-effort. Returns the
/// sidecar (if any) plus a note when a present sidecar was unusable.
fn resolve_sidecar(
    ckpt: &Path,
    explicit: Option<&PathBuf>,
) -> (Option<EccSidecar>, Option<String>) {
    match explicit {
        Some(p) => match EccSidecar::load(p) {
            Ok(sc) => (Some(sc), None),
            Err(e) => fail(&format!("sidecar {}: {e}", p.display())),
        },
        None => {
            let conventional = EccSidecar::sidecar_path(ckpt);
            if !conventional.exists() {
                return (None, None);
            }
            match EccSidecar::load(&conventional) {
                Ok(sc) => (Some(sc), None),
                Err(e) => (None, Some(format!("{}: {e}", conventional.display()))),
            }
        }
    }
}

// --------------------------------------------------------------------- scan

fn section_state_label(state: &SectionState) -> String {
    match state {
        SectionState::Intact => "intact".to_string(),
        SectionState::CrcMismatch => "crc-mismatch".to_string(),
        SectionState::Truncated { available } => format!("truncated({available})"),
    }
}

fn scan_exit_code(report: &ScanReport) -> i32 {
    match &report.structure {
        ScanStructure::Unreadable { .. } => 2,
        _ if report.is_clean() => 0,
        _ => 1,
    }
}

fn scan_summary(path: &Path, report: &ScanReport) -> String {
    match &report.structure {
        ScanStructure::Unreadable { error } => {
            format!("{}: UNREADABLE ({error})", path.display())
        }
        ScanStructure::Readable { expected_len, actual_len } => {
            if report.is_clean() {
                format!(
                    "{}: clean ({} sections, {expected_len} bytes)",
                    path.display(),
                    report.sections.len()
                )
            } else {
                let missing = expected_len.saturating_sub(*actual_len);
                let trailing = actual_len.saturating_sub(*expected_len);
                let mut notes = vec![format!(
                    "{}/{} sections damaged",
                    report.damaged_sections(),
                    report.sections.len()
                )];
                if missing > 0 {
                    notes.push(format!("{missing} bytes missing"));
                }
                if trailing > 0 {
                    notes.push(format!("{trailing} trailing bytes"));
                }
                if let Some(e) = &report.sidecar_error {
                    notes.push(format!("sidecar ignored: {e}"));
                }
                let ecc_events: usize = report
                    .sections
                    .iter()
                    .filter_map(|s| s.ecc)
                    .map(|e| e.corrected_words + e.uncorrectable_words + e.parity_faults)
                    .sum();
                if ecc_events > 0 {
                    notes.push(format!("{ecc_events} ecc word events"));
                }
                format!("{}: DAMAGED ({})", path.display(), notes.join(", "))
            }
        }
    }
}

fn scan_json(path: &Path, report: &ScanReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"file\":{},", jstr(&path.display().to_string())));
    match &report.structure {
        ScanStructure::Unreadable { error } => {
            out.push_str(&format!("\"structure\":\"unreadable\",\"error\":{}", jstr(error)));
        }
        ScanStructure::Readable { expected_len, actual_len } => {
            out.push_str(&format!(
                "\"structure\":\"readable\",\"expected_len\":{expected_len},\"actual_len\":{actual_len},\"clean\":{},",
                report.is_clean()
            ));
            if let Some(e) = &report.sidecar_error {
                out.push_str(&format!("\"sidecar_error\":{},", jstr(e)));
            }
            out.push_str("\"sections\":[");
            for (i, s) in report.sections.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"path\":{},\"offset\":{},\"byte_len\":{},\"state\":{}",
                    jstr(&s.path),
                    s.offset,
                    s.byte_len,
                    jstr(&section_state_label(&s.state))
                ));
                if let Some(e) = s.ecc {
                    out.push_str(&format!(
                        ",\"ecc\":{{\"corrected_words\":{},\"uncorrectable_words\":{},\"parity_faults\":{}}}",
                        e.corrected_words, e.uncorrectable_words, e.parity_faults
                    ));
                }
                out.push('}');
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

fn cmd_scan_one(path: &Path, flags: &Flags) -> i32 {
    let bytes = read_file(path);
    let (sidecar, mut sidecar_note) = resolve_sidecar(path, flags.sidecar.as_ref());
    let mut report = scan_bytes(&bytes, sidecar.as_ref());
    if report.sidecar_error.is_none() {
        report.sidecar_error = sidecar_note.take();
    }
    if flags.json {
        println!("{}", scan_json(path, &report));
    } else {
        println!("{}", scan_summary(path, &report));
        if let ScanStructure::Readable { .. } = report.structure {
            for s in &report.sections {
                let ecc = match s.ecc {
                    Some(e) if e.corrected_words + e.uncorrectable_words + e.parity_faults > 0 => {
                        format!(
                            "  [ecc: {} corrected, {} uncorrectable, {} parity faults]",
                            e.corrected_words, e.uncorrectable_words, e.parity_faults
                        )
                    }
                    _ => String::new(),
                };
                println!(
                    "  {:<40} @{:<10} {:>10} B  {}{}",
                    s.path,
                    s.offset,
                    s.byte_len,
                    section_state_label(&s.state),
                    ecc
                );
            }
        }
    }
    scan_exit_code(&report)
}

/// Fleet mode: scan every non-sidecar file under `dir` (recursively)
/// through the rayon work-stealing pool; output is path-sorted and
/// therefore deterministic for any worker count.
fn cmd_scan_fleet(dir: &Path, flags: &Flags) -> i32 {
    let mut files = Vec::new();
    collect_files(dir, &mut files);
    files.retain(|p| p.extension().map(|e| e != "ecc").unwrap_or(true));
    files.sort();
    if files.is_empty() {
        fail(&format!("{}: no checkpoint files found", dir.display()));
    }
    let results: Vec<(PathBuf, ScanReport)> = files
        .into_par_iter()
        .map(|path| {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    return (
                        path,
                        ScanReport {
                            structure: ScanStructure::Unreadable { error: e.to_string() },
                            sections: Vec::new(),
                            sidecar_error: None,
                        },
                    )
                }
            };
            let conventional = EccSidecar::sidecar_path(&path);
            let sidecar =
                if conventional.exists() { EccSidecar::load(&conventional).ok() } else { None };
            let report = scan_bytes(&bytes, sidecar.as_ref());
            (path, report)
        })
        .collect();
    let mut code = 0;
    if flags.json {
        let body: Vec<String> = results.iter().map(|(p, r)| scan_json(p, r)).collect();
        println!("[{}]", body.join(","));
    }
    for (path, report) in &results {
        if !flags.json {
            println!("{}", scan_summary(path, report));
        }
        code = code.max(scan_exit_code(report));
    }
    code
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| fail(&format!("{}: {e}", dir.display())));
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_files(&path, out);
        } else {
            out.push(path);
        }
    }
}

// ------------------------------------------------------------------- locate

fn cmd_locate(path: &Path, offset: usize, json: bool) -> i32 {
    let bytes = read_file(path);
    let index = FileIndex::parse_lenient(&bytes)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    let loc = locate_byte(&index, offset);
    if json {
        let body = match &loc {
            ByteLocation::Superblock => "\"region\":\"superblock\"".to_string(),
            ByteLocation::Index => "\"region\":\"index\"".to_string(),
            ByteLocation::PastEnd => "\"region\":\"past-end\"".to_string(),
            ByteLocation::Dataset { path, element, byte_in_element } => format!(
                "\"region\":\"payload\",\"dataset\":{},\"element\":{element},\"byte_in_element\":{byte_in_element},\"bits\":[{},{}]",
                jstr(path),
                8 * byte_in_element,
                8 * byte_in_element + 7
            ),
        };
        println!("{{\"offset\":{offset},{body}}}");
    } else {
        match &loc {
            ByteLocation::Superblock => println!("byte {offset}: superblock (fixed header)"),
            ByteLocation::Index => println!("byte {offset}: index (paths, shapes, CRCs)"),
            ByteLocation::PastEnd => println!("byte {offset}: past the indexed end of file"),
            ByteLocation::Dataset { path, element, byte_in_element } => println!(
                "byte {offset}: dataset {path}, element {element}, byte {byte_in_element} (value bits {}..={})",
                8 * byte_in_element,
                8 * byte_in_element + 7
            ),
        }
    }
    0
}

// ------------------------------------------------------------------ salvage

fn cmd_salvage(path: &Path, flags: &Flags) -> i32 {
    let out_path = flags.out.clone().unwrap_or_else(|| fail("salvage needs --out <path>"));
    let bytes = read_file(path);
    let (sidecar, _) = resolve_sidecar(path, flags.sidecar.as_ref());
    let (file, report) = salvage(&bytes, sidecar.as_ref(), flags.epoch)
        .unwrap_or_else(|e| fail(&format!("{}: unsalvageable: {e}", path.display())));
    file.save_v2(&out_path).unwrap_or_else(|e| fail(&format!("{}: {e}", out_path.display())));
    if flags.json {
        let list = |v: &[String]| v.iter().map(|s| jstr(s)).collect::<Vec<_>>().join(",");
        println!(
            "{{\"file\":{},\"out\":{},\"clean\":{},\"intact\":[{}],\"corrected\":[{}],\"zero_filled\":[{}],\"epoch_defaults\":[{}],\"missing_bytes\":{}}}",
            jstr(&path.display().to_string()),
            jstr(&out_path.display().to_string()),
            report.is_clean(),
            list(&report.intact),
            list(&report.corrected),
            list(&report.zero_filled),
            list(&report.epoch_defaults),
            report.missing_bytes
        );
    } else {
        println!(
            "salvaged {} -> {}: {} intact, {} ecc-corrected, {} zero-filled ({} epoch defaults), {} bytes padded",
            path.display(),
            out_path.display(),
            report.intact.len(),
            report.corrected.len(),
            report.zero_filled.len(),
            report.epoch_defaults.len(),
            report.missing_bytes
        );
        for p in &report.corrected {
            println!("  corrected   {p}");
        }
        for p in &report.zero_filled {
            println!("  zero-filled {p}");
        }
    }
    if report.is_clean() {
        0
    } else {
        1
    }
}

// --------------------------------------------------------------------- diff

fn cmd_diff(a_path: &Path, b_path: &Path, json: bool) -> i32 {
    let load = |p: &Path| {
        H5File::from_bytes(&read_file(p)).unwrap_or_else(|e| fail(&format!("{}: {e}", p.display())))
    };
    let report = diff(&load(a_path), &load(b_path));
    if json {
        let body: Vec<String> = report
            .changed
            .iter()
            .map(|e| {
                let state = match &e.state {
                    DiffState::OnlyInA => "\"state\":\"only-in-a\"".to_string(),
                    DiffState::OnlyInB => "\"state\":\"only-in-b\"".to_string(),
                    DiffState::LayoutChanged => "\"state\":\"layout-changed\"".to_string(),
                    DiffState::DtypeChanged { from, to, elements } => format!(
                        "\"state\":\"dtype-changed\",\"from\":\"{from:?}\",\"to\":\"{to:?}\",\"elements\":{elements}"
                    ),
                    DiffState::Changed { bytes, elements } => {
                        format!("\"state\":\"changed\",\"bytes\":{bytes},\"elements\":{elements}")
                    }
                };
                format!("{{\"path\":{},{state}}}", jstr(&e.path))
            })
            .collect();
        println!(
            "{{\"identical\":{},\"changed\":[{}],\"total_byte_delta\":{}}}",
            report.identical,
            body.join(","),
            report.total_byte_delta()
        );
    } else if report.is_identical() {
        println!("identical ({} datasets)", report.identical);
    } else {
        println!(
            "{} datasets differ ({} identical, {} bytes total):",
            report.changed.len(),
            report.identical,
            report.total_byte_delta()
        );
        for e in &report.changed {
            let state = match &e.state {
                DiffState::OnlyInA => format!("only in {}", a_path.display()),
                DiffState::OnlyInB => format!("only in {}", b_path.display()),
                DiffState::LayoutChanged => "layout changed".to_string(),
                DiffState::DtypeChanged { from, to, elements } => {
                    format!("dtype {from:?} -> {to:?}, {elements} logically differing elements")
                }
                DiffState::Changed { bytes, elements } => {
                    format!("{bytes} bytes across {elements} elements")
                }
            };
            println!("  {:<40} {state}", e.path);
        }
    }
    if report.is_identical() {
        0
    } else {
        1
    }
}

// ------------------------------------------------------------------ protect

fn cmd_protect(path: &Path, flags: &Flags) -> i32 {
    let bytes = read_file(path);
    let sidecar = EccSidecar::protect(&bytes)
        .unwrap_or_else(|e| fail(&format!("{}: cannot protect: {e}", path.display())));
    let out_path = flags.out.clone().unwrap_or_else(|| EccSidecar::sidecar_path(path));
    sidecar.save(&out_path).unwrap_or_else(|e| fail(&format!("{}: {e}", out_path.display())));
    if flags.json {
        println!(
            "{{\"file\":{},\"sidecar\":{},\"sections\":{},\"parity_bytes\":{}}}",
            jstr(&path.display().to_string()),
            jstr(&out_path.display().to_string()),
            sidecar.section_count(),
            sidecar.parity_bytes()
        );
    } else {
        println!(
            "protected {} -> {} ({} sections, {} parity bytes)",
            path.display(),
            out_path.display(),
            sidecar.section_count(),
            sidecar.parity_bytes()
        );
    }
    0
}

// --------------------------------------------------------------------- mint

/// Write a small deterministic demo checkpoint — a Chainer-shaped layer
/// group plus `meta/epoch` — for smoke tests and for trying the tool
/// without a training run.
fn cmd_mint(path: &Path, epoch: i64) -> i32 {
    use sefi_hdf5::{Dataset, Dtype};
    let mut file = H5File::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    };
    for (name, shape) in
        [("conv1/W", vec![8usize, 3, 3, 3]), ("conv1/b", vec![8]), ("fc/W", vec![10, 72])]
    {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| next()).collect();
        let ds = Dataset::from_f32(&data, &shape, Dtype::F32)
            .expect("demo shapes are element-consistent");
        file.create_dataset(&format!("predictor/{name}"), ds).expect("demo paths are unique");
    }
    file.create_dataset("meta/epoch", Dataset::scalar_i64(epoch)).expect("fresh path");
    file.save_v2(path).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    println!("minted demo checkpoint {} (epoch {epoch})", path.display());
    0
}

// --------------------------------------------------------------------- main

/// Restore the default SIGPIPE disposition so `sefi-ckpt scan | head`
/// exits quietly instead of panicking on a closed stdout.
#[cfg(unix)]
fn reset_sigpipe() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else { usage() };
    let (flags, positionals) = parse_flags(&args[1..]);
    let code = match cmd.as_str() {
        "scan" => match (&flags.fleet, positionals.as_slice()) {
            (Some(dir), []) => cmd_scan_fleet(dir, &flags),
            (None, [ckpt]) => cmd_scan_one(Path::new(ckpt), &flags),
            _ => usage(),
        },
        "locate" => match positionals.as_slice() {
            [ckpt, offset] => {
                let offset =
                    parse_offset(offset).unwrap_or_else(|| fail(&format!("bad offset {offset:?}")));
                cmd_locate(Path::new(ckpt), offset, flags.json)
            }
            _ => usage(),
        },
        "salvage" => match positionals.as_slice() {
            [ckpt] => cmd_salvage(Path::new(ckpt), &flags),
            _ => usage(),
        },
        "diff" => match positionals.as_slice() {
            [a, b] => cmd_diff(Path::new(a), Path::new(b), flags.json),
            _ => usage(),
        },
        "protect" => match positionals.as_slice() {
            [ckpt] => cmd_protect(Path::new(ckpt), &flags),
            _ => usage(),
        },
        "mint" => match positionals.as_slice() {
            [path] => cmd_mint(Path::new(path), flags.epoch),
            _ => usage(),
        },
        _ => usage(),
    };
    exit(code);
}

/// Parse a byte offset, accepting decimal or `0x`-prefixed hex.
fn parse_offset(s: &str) -> Option<usize> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        usize::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
