//! One worker process of a multi-process adaptive campaign.
//!
//! Launch N copies of this binary with the same `--results-dir` and
//! distinct `--worker-id` tags; they coordinate through lease files and
//! per-worker manifest shards in that directory, with no other IPC. Every
//! worker assembles (and writes) the identical table once all cells stop,
//! so the campaign tolerates any worker dying at any point — including
//! `kill -9` mid-wave — as long as at least one survives or is relaunched.
//!
//! ```text
//! sefi-campaign-worker --experiment fig2 --budget smoke \
//!     --results-dir results/fig2-sharded --worker-id w1 \
//!     --wave 2 --ci-width 0.7 [--max-trials N] \
//!     [--lease-ttl-ms 30000] [--poll-ms 200]
//! ```

use sefi_experiments::{
    budget_from_args, exp_bitranges, exp_nev, exp_rwc, Budget, CampaignConfig, Prebaked,
    ShardWorkerConfig, StoppingRule,
};
use std::time::Duration;

struct Args {
    experiment: String,
    results_dir: String,
    worker_id: String,
    wave: Option<usize>,
    ci_width: f64,
    max_trials: Option<usize>,
    lease_ttl: Duration,
    poll: Duration,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut args = Args {
        experiment: String::new(),
        results_dir: "results".to_string(),
        worker_id: String::new(),
        wave: None,
        ci_width: 0.7,
        max_trials: None,
        lease_ttl: Duration::from_millis(30_000),
        poll: Duration::from_millis(200),
    };
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).unwrap_or_else(|| usage(&format!("{} needs a value", argv[*i - 1]))).clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--experiment" => args.experiment = value(&mut i),
            "--results-dir" => args.results_dir = value(&mut i),
            "--worker-id" => args.worker_id = value(&mut i),
            "--wave" => args.wave = Some(parse(&value(&mut i), "--wave")),
            "--ci-width" => args.ci_width = parse(&value(&mut i), "--ci-width"),
            "--max-trials" => args.max_trials = Some(parse(&value(&mut i), "--max-trials")),
            "--lease-ttl-ms" => {
                args.lease_ttl = Duration::from_millis(parse(&value(&mut i), "--lease-ttl-ms"))
            }
            "--poll-ms" => args.poll = Duration::from_millis(parse(&value(&mut i), "--poll-ms")),
            "--budget" => {
                let _ = value(&mut i); // consumed by budget_from_args
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if args.worker_id.is_empty() {
        usage("--worker-id is required (it names this worker's manifest shard)");
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("cannot parse {flag} value {s:?}")))
}

fn usage(err: &str) -> ! {
    eprintln!("sefi-campaign-worker: {err}");
    eprintln!(
        "usage: sefi-campaign-worker --experiment fig2|nev|rwc --worker-id <tag> \
         [--budget smoke|default|paper] [--results-dir <dir>] [--wave N] \
         [--ci-width X] [--max-trials N] [--lease-ttl-ms N] [--poll-ms N]"
    );
    std::process::exit(2);
}

fn rule_for(args: &Args, budget: &Budget) -> StoppingRule {
    let max_trials = args.max_trials.unwrap_or(match args.experiment.as_str() {
        "fig2" => budget.fig2_trainings,
        _ => budget.trials,
    });
    match args.wave {
        Some(wave) => StoppingRule::new(wave, args.ci_width, max_trials),
        None => StoppingRule::halving(max_trials, args.ci_width),
    }
}

fn main() {
    let budget = budget_from_args();
    let args = parse_args();
    let rule = rule_for(&args, &budget);
    let shard = ShardWorkerConfig { lease_ttl: args.lease_ttl, poll: args.poll };
    let config = CampaignConfig::new(&format!("{}-adaptive", args.experiment))
        .results_dir(&args.results_dir)
        .shard_id(&args.worker_id);
    let pre = Prebaked::with_campaign(budget, config).expect("results directory is writable");
    eprintln!(
        "worker {}: {} adaptive, wave {} / width {} / cap {}",
        args.worker_id, args.experiment, rule.wave, rule.target_width, rule.max_trials
    );

    let (csv_name, table) = match args.experiment.as_str() {
        "fig2" => {
            let (rows, table) = exp_bitranges::figure2_adaptive_sharded(&pre, rule, &shard)
                .expect("manifest directory is readable");
            println!("{}", table.render());
            println!(
                "collapse occurs only when the range includes exponent MSB (bit 62): {}",
                exp_bitranges::collapse_only_with_critical_bit(&rows)
            );
            ("fig2_adaptive.csv", table)
        }
        // The nev/rwc tables run adaptively in-process (every worker would
        // produce identical bytes, so sharding them is wiring, not new
        // machinery); the worker accepts them for single-process adaptive
        // regeneration.
        "nev" => {
            let (_, table) = exp_nev::table4_adaptive(&pre, rule);
            println!("{}", table.render());
            ("table4_adaptive.csv", table)
        }
        "rwc" => {
            let (_, table) = exp_rwc::table5_adaptive(&pre, rule);
            println!("{}", table.render());
            ("table5_adaptive.csv", table)
        }
        other => usage(&format!("unknown experiment {other:?} (expected fig2, nev, or rwc)")),
    };
    let path = pre.results_file(csv_name);
    std::fs::write(&path, table.to_csv()).expect("results CSV is writable");
    println!("wrote {}", path.display());
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
