//! Regenerates Figure 4: per-layer injection into AlexNet (Chainer).

use sefi_experiments::{
    budget_from_args, campaign_config_from_args, exp_curves, exp_layers, Prebaked,
};
use sefi_frameworks::FrameworkKind;
use sefi_models::ModelKind;

fn main() {
    let budget = budget_from_args();
    println!("Figure 4 — 1000 bit-flips injected into first/middle/last layer (Chainer/AlexNet)");
    println!("budget: {} (avg of {} trainings/curve)\n", budget.name, budget.curve_trials);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("fig4"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig4");
    let (series, logs) = exp_layers::figure4(&pre);
    let panel =
        exp_curves::Panel { framework: FrameworkKind::Chainer, model: ModelKind::AlexNet, series };
    let t = exp_curves::render_panel(&panel);
    println!("{}", t.render());
    println!("{}", sefi_experiments::chart::render_chart(&panel.series));
    let _ = std::fs::write(pre.results_file("fig4.csv"), t.to_csv());
    for (role, log) in &logs {
        let name = pre.results_file(&format!(
            "fig4_log_{}.json",
            exp_layers::role_label(*role).replace(' ', "_")
        ));
        let _ = log.save(&name);
        println!("wrote {} ({} logged injections)", name.display(), log.len());
    }
    println!("wrote {}", pre.results_file("fig4.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
