//! Regenerates Figure 4: per-layer injection into AlexNet (Chainer).

use sefi_experiments::{budget_from_args, exp_curves, exp_layers, CampaignConfig, Prebaked};
use sefi_frameworks::FrameworkKind;
use sefi_models::ModelKind;

fn main() {
    let budget = budget_from_args();
    println!("Figure 4 — 1000 bit-flips injected into first/middle/last layer (Chainer/AlexNet)");
    println!("budget: {} (avg of {} trainings/curve)\n", budget.name, budget.curve_trials);
    let pre = Prebaked::with_campaign(budget, CampaignConfig::new("fig4"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig4");
    let (series, logs) = exp_layers::figure4(&pre);
    let panel =
        exp_curves::Panel { framework: FrameworkKind::Chainer, model: ModelKind::AlexNet, series };
    let t = exp_curves::render_panel(&panel);
    println!("{}", t.render());
    println!("{}", sefi_experiments::chart::render_chart(&panel.series));
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig4.csv", t.to_csv());
    for (role, log) in &logs {
        let name =
            format!("results/fig4_log_{}.json", exp_layers::role_label(*role).replace(' ', "_"));
        let _ = log.save(&name);
        println!("wrote {name} ({} logged injections)", log.len());
    }
    println!("wrote results/fig4.csv");

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
