//! Regenerates Figure 6: soft-error propagation boxplots
//! (TensorFlow/AlexNet).

use sefi_experiments::{budget_from_args, exp_propagation, CampaignConfig, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Figure 6 — propagation of errors (TensorFlow/AlexNet, 1000 flips)");
    println!(
        "budget: {} (inject at epoch {}, compare at epoch {})\n",
        budget.name,
        budget.restart_epoch,
        budget.restart_epoch + budget.resume_epochs
    );
    let pre = Prebaked::with_campaign(budget, CampaignConfig::new("fig6"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig6");
    let (_, table) = exp_propagation::figure6(&pre);
    println!("{}", table.render());
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig6.csv", table.to_csv());
    println!("wrote results/fig6.csv");

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
