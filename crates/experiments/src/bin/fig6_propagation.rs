//! Regenerates Figure 6: soft-error propagation boxplots
//! (TensorFlow/AlexNet).

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_propagation, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Figure 6 — propagation of errors (TensorFlow/AlexNet, 1000 flips)");
    println!(
        "budget: {} (inject at epoch {}, compare at epoch {})\n",
        budget.name,
        budget.restart_epoch,
        budget.restart_epoch + budget.resume_epochs
    );
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("fig6"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig6");
    let (_, table) = exp_propagation::figure6(&pre);
    println!("{}", table.render());
    let _ = std::fs::write(pre.results_file("fig6.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("fig6.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
