//! Ablation: why the paper's Figure 3b shows a "slight improvement" after
//! restart.
//!
//! The paper attributes the offset to "not saving other types of
//! optimization information at the checkpoint". This binary quantifies it:
//! it compares an uninterrupted training against (a) a cold resume (plain
//! checkpoint, momentum reset — the paper's frameworks) and (b) a warm
//! resume (checkpoint carrying momentum buffers — this repo's extension),
//! at every epoch after the restart.

use sefi_experiments::{budget_from_args, table::TextTable, Prebaked};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;

fn main() {
    let budget = budget_from_args();
    println!("Ablation — optimizer state in checkpoints (paper Fig. 3b artifact)");
    println!("budget: {}\n", budget.name);
    let pre = Prebaked::new(budget);
    let data = pre.data();

    let mut table = TextTable::new(&["epoch", "uninterrupted", "cold resume", "warm resume"]);
    for model in [ModelKind::Vgg16, ModelKind::AlexNet] {
        // A true uninterrupted run trains from scratch (not via the shared
        // restart checkpoint, which is itself a cold resume).
        let mut cfg =
            sefi_frameworks::SessionConfig::new(FrameworkKind::PyTorch, model, 0x5EF1_2021);
        cfg.model_config = budget.model_config();
        cfg.train.batch_size = 8;
        let mut uninterrupted = sefi_frameworks::Session::new(cfg.clone());
        let out_full = uninterrupted.train_to(data, budget.curve_end_epoch);

        // Interrupted at the restart epoch; both resume flavours.
        let mut part = sefi_frameworks::Session::new(cfg.clone());
        part.train_to(data, budget.restart_epoch);
        let cold_ck = part.checkpoint(Dtype::F64);
        let warm_ck = part.checkpoint_with_optimizer(Dtype::F64);

        let mut cold = sefi_frameworks::Session::new(cfg.clone());
        cold.restore(&cold_ck).expect("cold restore");
        let out_cold = cold.train_to(data, budget.curve_end_epoch);

        let mut warm = sefi_frameworks::Session::new(cfg);
        warm.restore(&warm_ck).expect("warm restore");
        let out_warm = warm.train_to(data, budget.curve_end_epoch);

        println!("model: {}", model.id());
        for e in budget.restart_epoch..budget.curve_end_epoch {
            let find = |h: &[sefi_nn::EpochRecord]| {
                h.iter()
                    .find(|r| r.epoch == e)
                    .map(|r| format!("{:.2}", r.test_accuracy * 100.0))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                e.to_string(),
                find(out_full.history()),
                find(out_cold.history()),
                find(out_warm.history()),
            ]);
        }
        println!("{}", table.render());
        let warm_exact = out_warm
            .history()
            .iter()
            .filter(|r| r.epoch >= budget.restart_epoch)
            .zip(out_full.history().iter().filter(|r| r.epoch >= budget.restart_epoch))
            .all(|(w, f)| w.test_accuracy == f.test_accuracy);
        println!("warm resume tracks the uninterrupted run exactly: {warm_exact}\n");
        table = TextTable::new(&["epoch", "uninterrupted", "cold resume", "warm resume"]);
    }
}
