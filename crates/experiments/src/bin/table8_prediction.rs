//! Regenerates Table VIII: prediction accuracy under corruption at
//! different floating-point precisions.

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_predict, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Table VIII — prediction under different precisions and bit-flip rates (Chainer)");
    println!(
        "budget: {} ({} predictions x {} images per cell)\n",
        budget.name, budget.predict_trials, budget.predict_images
    );
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("table8"))
        .expect("results directory is writable");
    let _phase = pre.phase("table8");
    let (_, table) = exp_predict::table8(&pre);
    println!("{}", table.render());
    let _ = std::fs::write(pre.results_file("table8.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("table8.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
