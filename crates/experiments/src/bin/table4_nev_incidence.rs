//! Regenerates Table IV: incidence of NaN and extreme values at 64-bit.

use sefi_experiments::{budget_from_args, exp_nev, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Table IV — incidence of NaN and extreme values (N-EV), 64-bit");
    println!("budget: {} ({} trainings/cell)\n", budget.name, budget.trials);
    let pre = Prebaked::new(budget);
    let (cells, table) = exp_nev::table4(&pre);
    println!("{}", table.render());
    println!(
        "ascending N-EV pattern with bit-flip count: {}",
        exp_nev::ascending_pattern_holds(&cells)
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/table4.csv", table.to_csv());
    println!("wrote results/table4.csv");
}
