//! Regenerates Figure 3: accuracy curves under different bit-flip rates.

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_curves, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Figure 3 — sensitivity to different bit-flip rates");
    println!(
        "budget: {} (avg of {} trainings/curve, restart at epoch {})\n",
        budget.name, budget.curve_trials, budget.restart_epoch
    );
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("fig3"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig3");
    for panel in exp_curves::figure3(&pre) {
        let t = exp_curves::render_panel(&panel);
        println!(
            "panel: {} / {}  (no degradation vs error-free: {})",
            panel.framework.display(),
            panel.model.id(),
            exp_curves::no_degradation(&panel, 0.10)
        );
        println!("{}", t.render());
        println!("{}", sefi_experiments::chart::render_chart(&panel.series));
        let name =
            pre.results_file(&format!("fig3_{}_{}.csv", panel.framework.id(), panel.model.id()));
        let _ = std::fs::write(&name, t.to_csv());
        println!("wrote {}\n", name.display());
    }

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
