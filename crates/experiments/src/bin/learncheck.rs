//! Diagnostic: baseline learning quality per model at a budget.
//!
//! Use when tuning a budget's `noise`/`model_scale`/`restart_epoch` so the
//! three models land in the paper-like accuracy regime (clearly above
//! chance at the restart epoch, not saturated at the curve end):
//!
//! ```text
//! cargo run --release -p sefi-experiments --bin learncheck -- --budget default
//! ```

use sefi_experiments::{budget_from_args, Prebaked};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;

fn main() {
    let b = budget_from_args();
    let pre = Prebaked::new(b);
    for model in ModelKind::all() {
        let t0 = std::time::Instant::now();
        let acc0 = {
            let mut s = pre.session_at_restart(FrameworkKind::Chainer, model);
            s.test_accuracy(pre.data())
        };
        let curve = pre.baseline_curve(model, Dtype::F64, b.curve_end_epoch);
        println!(
            "{:<10} acc@restart={:.3} acc@end={:.3} ({:.1}s)",
            model.id(),
            acc0,
            curve.last().unwrap().test_accuracy,
            t0.elapsed().as_secs_f64()
        );
    }
}
