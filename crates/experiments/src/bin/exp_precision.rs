//! Cross-dtype equivalent injection: the same logical weight, the same
//! format-relative bit, in every storage format (f16/bf16/f32/f64).

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_precision, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Equivalent injection across storage formats (Chainer / AlexNet)");
    println!("budget: {} ({} trainings/cell)\n", budget.name, budget.trials);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("precision"))
        .expect("results directory is writable");
    let _phase = pre.phase("precision");
    let (rows, table) = exp_precision::precision_table(&pre);
    println!("{}", table.render());
    println!(
        "exponent-width divergence (bf16 exp-msb N-EV > f16): {}",
        exp_precision::exponent_width_divergence(&rows)
    );
    let _ = std::fs::write(pre.results_file("precision.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("precision.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
