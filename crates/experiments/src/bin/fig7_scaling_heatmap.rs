//! Regenerates Figure 7: accuracy heat map under scaling-factor corruption
//! (Chainer/ResNet50).

use sefi_experiments::{budget_from_args, exp_heatmap, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Figure 7 — accuracy under scaling-factor corruption (Chainer/ResNet50)");
    println!("budget: {}\n", budget.name);
    let pre = Prebaked::new(budget);
    let (cells, baseline, table) = exp_heatmap::figure7(&pre);
    println!("baseline accuracy: {baseline:.3}\n");
    println!("{}", table.render());
    println!("monotone damage (heavy >= light): {}", exp_heatmap::monotone_damage(&cells));
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/fig7.csv", table.to_csv());
    println!("wrote results/fig7.csv");
}
