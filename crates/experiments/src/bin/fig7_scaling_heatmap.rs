//! Regenerates Figure 7: accuracy heat map under scaling-factor corruption
//! (Chainer/ResNet50).

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_heatmap, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Figure 7 — accuracy under scaling-factor corruption (Chainer/ResNet50)");
    println!("budget: {}\n", budget.name);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("fig7"))
        .expect("results directory is writable");
    let _phase = pre.phase("fig7");
    let (cells, baseline, table) = exp_heatmap::figure7(&pre);
    println!("baseline accuracy: {baseline:.3}\n");
    println!("{}", table.render());
    println!("monotone damage (heavy >= light): {}", exp_heatmap::monotone_damage(&cells));
    let _ = std::fs::write(pre.results_file("fig7.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("fig7.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
