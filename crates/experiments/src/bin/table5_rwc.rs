//! Regenerates Table V: model sensitivity to a single bit-flip (RWC).

use sefi_experiments::{budget_from_args, campaign_config_from_args, exp_rwc, Prebaked};

fn main() {
    let budget = budget_from_args();
    println!("Table V — sensitivity to 1 bit-flip (RWC = restarted with no change)");
    println!("budget: {} ({} trainings/cell)\n", budget.name, budget.trials);
    let pre = Prebaked::with_campaign(budget, campaign_config_from_args("table5"))
        .expect("results directory is writable");
    let _phase = pre.phase("table5");
    let (_, table) = exp_rwc::table5(&pre);
    println!("{}", table.render());
    let _ = std::fs::write(pre.results_file("table5.csv"), table.to_csv());
    println!("wrote {}", pre.results_file("table5.csv").display());

    drop(_phase);
    if let Some(summary) = pre.finish_campaign() {
        println!("\n--- campaign summary ---\n{summary}");
    }
}
