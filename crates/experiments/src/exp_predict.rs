//! Table VIII — prediction (inference) under different floating-point
//! precisions and bit-flip rates.
//!
//! A fully trained Chainer checkpoint is corrupted with 0/1/10/100/1000
//! full-range bit-flips at 16/32/64-bit storage; each cell averages
//! `predict_trials` prediction runs of `predict_images` images and counts
//! (in parentheses in the paper) the runs whose computation produced an
//! N-EV. Unlike training, prediction has no chance to recover — degraded
//! weights directly degrade accuracy, more at lower precision.

use crate::runner::{CellPlan, Prebaked};
use crate::table::TextTable;
use parking_lot::Mutex;
use sefi_core::{Corrupter, CorrupterConfig};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::{Dtype, H5File};
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;
use std::collections::HashMap;

/// One Table VIII cell.
#[derive(Debug, Clone)]
pub struct PredictCell {
    /// Storage precision.
    pub precision: Precision,
    /// Model.
    pub model: ModelKind,
    /// Bit-flips injected.
    pub bitflips: u64,
    /// Mean prediction accuracy (×100) over the non-N-EV runs; `None` when
    /// every run produced N-EV (the paper prints "-").
    pub accuracy: Option<f64>,
    /// Prediction runs that computed an N-EV (paper's parentheses).
    pub nev_runs: usize,
    /// Trials that failed to complete (excluded from the average).
    pub failed: usize,
}

/// Cache of fully trained checkpoints per (model, dtype).
pub struct TrainedCheckpoints<'a> {
    pre: &'a Prebaked,
    cache: Mutex<HashMap<(ModelKind, u32), H5File>>,
}

impl<'a> TrainedCheckpoints<'a> {
    /// New cache over a prebaked harness.
    pub fn new(pre: &'a Prebaked) -> Self {
        TrainedCheckpoints { pre, cache: Mutex::new(HashMap::new()) }
    }

    /// A Chainer checkpoint of `model` trained to the curve end epoch
    /// ("a trained checkpoint was used up to epoch 100"), stored at `dtype`.
    pub fn get(&self, model: ModelKind, dtype: Dtype) -> H5File {
        let key = (model, dtype.size() as u32);
        if let Some(f) = self.cache.lock().get(&key) {
            return f.clone();
        }
        let budget = *self.pre.budget();
        let mut session = self.pre.session_at_restart(FrameworkKind::Chainer, model);
        let out = session.train_to(self.pre.data(), budget.curve_end_epoch);
        assert!(!out.collapsed(), "error-free training collapsed");
        let ck = session.checkpoint(dtype);
        self.cache.lock().insert(key, ck.clone());
        ck
    }
}

/// Declare one prediction cell for the scheduler. The fully trained
/// checkpoint is minted (or served from the cache) here, sequentially,
/// before the pool dispatches.
pub fn predict_plan<'p>(
    trained: &TrainedCheckpoints<'p>,
    model: ModelKind,
    precision: Precision,
    bitflips: u64,
) -> CellPlan<'p> {
    let pre = trained.pre;
    let budget = *pre.budget();
    let dtype = Dtype::from_precision(precision);
    let pristine = std::sync::Arc::new(trained.get(model, dtype));

    let cell = format!("predict-{}-{bitflips}", precision.width());
    CellPlan::new(
        "table8",
        cell,
        FrameworkKind::Chainer,
        model,
        budget.predict_trials,
        move |trial, seed| {
            let mut ck = (*pristine).clone();
            let mut outcome = TrialOutcome::ok();
            if bitflips > 0 {
                let cfg = CorrupterConfig::bit_flips_full_range(bitflips, precision, seed);
                let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
                outcome =
                    outcome.with_counters(report.injections, report.nan_redraws, report.skipped);
            }
            let mut session = pre.session_at_restart(FrameworkKind::Chainer, model);
            session.restore(&ck).map_err(|e| format!("restore failed: {e}"))?;
            // Each run predicts a different slice of the test set ("each
            // prediction processed 1,000 different images").
            let n = budget.predict_images.min(pre.data().len(sefi_data::Split::Test));
            let start = (trial * n) % pre.data().len(sefi_data::Split::Test).max(1);
            let indices: Vec<usize> =
                (0..n).map(|i| (start + i) % pre.data().len(sefi_data::Split::Test)).collect();
            let (images, labels) = pre.data().gather(sefi_data::Split::Test, &indices);
            let (preds, nev) = session.predict(images);
            let correct = preds.iter().zip(&labels).filter(|(p, &l)| **p == l as usize).count();
            Ok(outcome.with_collapsed(nev).with_accuracy(correct as f64 / n.max(1) as f64))
        },
    )
}

/// Fold one prediction cell's outcomes into the table cell.
fn predict_assemble(
    model: ModelKind,
    precision: Precision,
    bitflips: u64,
    outcomes: &[TrialOutcome],
) -> PredictCell {
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    let nev_runs = outcomes.iter().filter(|o| o.collapsed).count();
    let clean: Vec<f64> = outcomes
        .iter()
        .filter(|o| !o.is_failed() && !o.collapsed)
        .filter_map(|o| o.final_accuracy.map(|a| a * 100.0))
        .collect();
    PredictCell {
        precision,
        model,
        bitflips,
        accuracy: if clean.is_empty() { None } else { Some(crate::stats::mean(&clean)) },
        nev_runs,
        failed,
    }
}

/// Measure one cell.
pub fn predict_cell(
    trained: &TrainedCheckpoints<'_>,
    model: ModelKind,
    precision: Precision,
    bitflips: u64,
) -> PredictCell {
    let plan = predict_plan(trained, model, precision, bitflips);
    let outcomes = trained.pre.run_plan(std::slice::from_ref(&plan)).pop().expect("one cell");
    predict_assemble(model, precision, bitflips, &outcomes)
}

/// Full Table VIII: {0,1,10,100,1000} flips × three precisions × three
/// models, Chainer — all 45 cells through one scheduler pool. The fully
/// trained checkpoints (one per model × precision) are minted while the
/// plans are built, before any trial dispatches.
pub fn table8(pre: &Prebaked) -> (Vec<PredictCell>, TextTable) {
    let trained = TrainedCheckpoints::new(pre);
    let mut counts = vec![0u64];
    counts.extend_from_slice(&pre.budget().bitflip_counts());
    let mut specs = Vec::new();
    for &flips in &counts {
        for precision in [Precision::Fp16, Precision::Fp32, Precision::Fp64] {
            for model in ModelKind::all() {
                specs.push((flips, precision, model));
            }
        }
    }
    let plans: Vec<CellPlan<'_>> = specs
        .iter()
        .map(|&(flips, precision, model)| predict_plan(&trained, model, precision, flips))
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut cells = Vec::new();
    let mut table =
        TextTable::new(&["Bit-flips", "Precision", "Model", "Accuracy", "N-EV", "Failed"]);
    for (&(flips, precision, model), outcomes) in specs.iter().zip(&pooled) {
        let cell = predict_assemble(model, precision, flips, outcomes);
        table.row(vec![
            flips.to_string(),
            format!("{} bits", precision.width()),
            model.id().to_string(),
            cell.accuracy.map(|a| format!("{a:.2}")).unwrap_or_else(|| "-".into()),
            format!("({})", cell.nev_runs),
            cell.failed.to_string(),
        ]);
        cells.push(cell);
    }
    (cells, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn error_free_prediction_has_no_nev() {
        let pre = Prebaked::new(Budget::smoke());
        let trained = TrainedCheckpoints::new(&pre);
        let cell = predict_cell(&trained, ModelKind::AlexNet, Precision::Fp64, 0);
        assert_eq!(cell.nev_runs, 0);
        assert!(cell.accuracy.is_some());
    }

    #[test]
    fn heavy_corruption_degrades_or_nevs_prediction() {
        let pre = Prebaked::new(Budget::smoke());
        let trained = TrainedCheckpoints::new(&pre);
        let clean = predict_cell(&trained, ModelKind::AlexNet, Precision::Fp32, 0);
        let heavy = predict_cell(&trained, ModelKind::AlexNet, Precision::Fp32, 1000);
        // Paper: prediction (unlike training) is visibly hurt at high rates
        // — either accuracy drops or runs turn N-EV.
        let degraded = match (clean.accuracy, heavy.accuracy) {
            (Some(c), Some(h)) => h < c + 1e-9,
            (_, None) => true,
            _ => false,
        };
        assert!(degraded || heavy.nev_runs > 0);
    }
}
