//! Served accuracy vs checkpoint injection rate under guarded serving.
//!
//! The serving experiments close the loop the paper opens: a corrupted
//! checkpoint is not just *resumed*, it is *served* — and the serving
//! stack (crates/serve) arms activation-envelope guards plus quarantine
//! reload failover against exactly the silent corruptions the paper
//! documents. Each trial deploys a two-replica pool whose checkpoint
//! files carry `rate` payload bit flips apiece, serves a fixed corpus
//! through [`ServeEngine::serve_deterministic`], and compares every
//! answer against the clean pool's answers. Trials classify into the
//! soft-error taxonomy extended with the recovery path:
//!
//! * **masked** — no guard trip, every answer matches the clean pool;
//! * **recovered** — the guard tripped and failover + ECC reload kept
//!   every answer clean anyway (a detected-and-corrected SDC);
//! * **detected** — the guard tripped but some answer still deviated
//!   (detected, imperfectly recovered);
//! * **silent** — no trip yet an answer deviated (the SDC that an
//!   unguarded stack would serve without a trace).
//!
//! Under the lane-stable kernel contract the whole table is a pure
//! function of the corpus, the seeds, and the checkpoint bytes — the CI
//! smoke run byte-compares the CSV across worker counts and across a
//! kill/resume of the campaign.

use crate::runner::{CellPlan, Prebaked, TrialError};
use crate::table::{pct, TextTable};
use sefi_core::{FileRegion, RawConfig, RawCorrupter};
use sefi_data::Split;
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::{Dtype, EccSidecar};
use sefi_models::ModelKind;
use sefi_nn::EnvelopeSet;
use sefi_serve::{calibrate_from_clean_bytes, EngineConfig, ReplicaSpec, Request, ServeEngine};
use sefi_telemetry::TrialOutcome;
use sefi_tensor::Tensor;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Replicas per trial pool — two, so failover has somewhere to go.
pub const REPLICAS: usize = 2;
/// Deterministic batch size for [`ServeEngine::serve_deterministic`].
pub const BATCH: usize = 8;
/// Fixed request corpus size (three full batches).
pub const CORPUS: usize = 24;

/// How one trial's served answers relate to the clean pool's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No trip, no deviation: the flips never surfaced.
    Masked,
    /// Guard tripped; failover + reload served only clean answers.
    Recovered,
    /// Guard tripped but at least one answer still deviated.
    Detected,
    /// No trip yet an answer deviated — the silent data corruption.
    Silent,
}

impl Verdict {
    /// Stable numeric code recorded as a trial metric (resume-safe).
    pub fn code(self) -> f64 {
        match self {
            Verdict::Masked => 0.0,
            Verdict::Recovered => 1.0,
            Verdict::Detected => 2.0,
            Verdict::Silent => 3.0,
        }
    }

    /// Inverse of [`Verdict::code`], for replaying manifest records.
    pub fn from_code(code: f64) -> Option<Self> {
        match code as i64 {
            0 => Some(Verdict::Masked),
            1 => Some(Verdict::Recovered),
            2 => Some(Verdict::Detected),
            3 => Some(Verdict::Silent),
            _ => None,
        }
    }

    fn classify(trips: u64, deviations: usize) -> Self {
        match (trips > 0, deviations > 0) {
            (false, false) => Verdict::Masked,
            (true, false) => Verdict::Recovered,
            (true, true) => Verdict::Detected,
            (false, true) => Verdict::Silent,
        }
    }
}

/// The swept injection rates: payload bit flips per replica file.
pub fn rates() -> [u64; 4] {
    [0, 1, 4, 16]
}

/// Trials per rate cell.
pub fn trials_per_rate(pre: &Prebaked) -> usize {
    pre.budget().trials.max(6)
}

/// One injection rate's row of the sweep.
#[derive(Debug, Clone)]
pub struct RateRow {
    /// Payload flips injected into each replica's checkpoint file.
    pub rate: u64,
    /// Trials classified (excludes failed trials).
    pub trials: usize,
    /// Verdict counts indexed by [`Verdict::code`].
    pub counts: [usize; 4],
    /// Mean served accuracy (percent, vs dataset labels).
    pub accuracy: f64,
    /// Mean guard trips per trial.
    pub trips: f64,
    /// Mean recovery reload passes per trial.
    pub reloads: f64,
    /// Trials where some request went unanswered (must stay 0).
    pub lost: usize,
    /// Trials that failed to complete (recorded, not classified).
    pub failed: usize,
}

impl RateRow {
    /// Count for one verdict class.
    pub fn get(&self, v: Verdict) -> usize {
        self.counts[v.code() as usize]
    }
}

fn engine_config(pre: &Prebaked) -> EngineConfig {
    EngineConfig {
        fw: FrameworkKind::Chainer,
        model: ModelKind::AlexNet,
        model_config: pre.budget().model_config(),
        dtype: Dtype::F32,
        max_batch: BATCH,
        batch_window: Duration::from_millis(1),
        guard_slack: 0.5,
    }
}

/// The fixed request corpus: the first [`CORPUS`] test images, ids in
/// dataset order so answers sort back into corpus order.
fn corpus(pre: &Prebaked) -> (Vec<Request>, Vec<u8>) {
    let data = pre.data();
    let reqs = (0..CORPUS)
        .map(|i| Request { id: i as u64, tag: 0, image: data.image(Split::Test, i).to_vec() })
        .collect();
    let labels = (0..CORPUS).map(|i| data.label(Split::Test, i)).collect();
    (reqs, labels)
}

fn calib_batches(reqs: &[Request], input_size: usize) -> Vec<Tensor> {
    reqs.chunks(BATCH)
        .map(|chunk| {
            let mut data = Vec::new();
            for r in chunk {
                data.extend_from_slice(&r.image);
            }
            Tensor::from_vec(data, &[chunk.len(), 3, input_size, input_size])
        })
        .collect()
}

/// Write per-replica checkpoint files into `dir` and stand up a pool.
fn build_engine(
    cfg: &EngineConfig,
    dir: &Path,
    replica_bytes: &[Vec<u8>],
    sidecar: &EccSidecar,
    env: Arc<EnvelopeSet>,
    canary: Tensor,
) -> Result<ServeEngine, String> {
    let mut specs = Vec::new();
    for (r, bytes) in replica_bytes.iter().enumerate() {
        let path = dir.join(format!("replica_{r}.h5"));
        std::fs::write(&path, bytes).map_err(|e| format!("writing {path:?}: {e}"))?;
        specs.push(ReplicaSpec { path, sidecar: Some(sidecar.clone()) });
    }
    ServeEngine::new(cfg.clone(), &specs, env, canary, None, "exp_serving")
}

/// Answer classes in corpus order (panics if an id is missing — the
/// engine's exactly-once contract makes that a harness bug, and the
/// `lost` column double-checks it from the recorded metric).
fn classes_in_order(mut answers: Vec<sefi_serve::Answer>) -> Vec<u32> {
    answers.sort_by_key(|a| a.id);
    answers.into_iter().map(|a| a.class).collect()
}

/// Run the sweep: for each injection rate, serve the fixed corpus from a
/// two-replica pool whose files each carry `rate` payload flips, and
/// classify the trial against the clean pool's answers.
pub fn serving_table(pre: &Prebaked) -> (Vec<RateRow>, TextTable) {
    let cfg = engine_config(pre);
    let trials = trials_per_rate(pre);
    let clean_bytes = Arc::new(pre.checkpoint(cfg.fw, cfg.model, cfg.dtype).to_bytes_v2());
    let sidecar = Arc::new(EccSidecar::protect(&clean_bytes).expect("sidecar over clean bytes"));
    let (reqs, labels) = corpus(pre);
    let reqs = Arc::new(reqs);
    let labels = Arc::new(labels);
    let batches = calib_batches(&reqs, cfg.model_config.input_size);
    let env = Arc::new(
        calibrate_from_clean_bytes(&cfg, &clean_bytes, &batches).expect("clean bytes calibrate"),
    );
    let canary = batches[0].clone();

    // The clean pool's answers are the per-request ground truth; a guard
    // that trips on them would poison every classification below.
    let clean: Arc<Vec<u32>> = {
        let dir =
            std::env::temp_dir().join(format!("sefi-exp-serving-{}-clean", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let bytes = vec![(*clean_bytes).clone(); REPLICAS];
        let engine = build_engine(&cfg, &dir, &bytes, &sidecar, Arc::clone(&env), canary.clone())
            .expect("clean pool loads");
        let answers = engine.serve_deterministic(&reqs, BATCH);
        assert_eq!(engine.totals().guard_trips, 0, "clean pool false-tripped");
        std::fs::remove_dir_all(&dir).ok();
        Arc::new(classes_in_order(answers))
    };

    let plans: Vec<CellPlan<'_>> = rates()
        .into_iter()
        .map(|rate| {
            let cfg = cfg.clone();
            let clean_bytes = Arc::clone(&clean_bytes);
            let sidecar = Arc::clone(&sidecar);
            let reqs = Arc::clone(&reqs);
            let labels = Arc::clone(&labels);
            let clean = Arc::clone(&clean);
            let env = Arc::clone(&env);
            let canary = canary.clone();
            let cell = format!("serving-rate{rate}");
            CellPlan::new("serving", cell, cfg.fw, cfg.model, trials, move |trial, seed| {
                let dir = std::env::temp_dir()
                    .join(format!("sefi-exp-serving-{}-r{rate}-t{trial}", std::process::id()));
                std::fs::create_dir_all(&dir)
                    .map_err(|e| TrialError::new(format!("temp dir: {e}")))?;
                let mut replica_bytes = Vec::with_capacity(REPLICAS);
                for r in 0..REPLICAS as u64 {
                    let mut bytes = (*clean_bytes).clone();
                    if rate > 0 {
                        let raw = RawConfig {
                            flips: rate,
                            region: Some(FileRegion::Payload),
                            seed: seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        };
                        RawCorrupter::new(raw)?.corrupt_bytes(&mut bytes)?;
                    }
                    replica_bytes.push(bytes);
                }
                let engine = build_engine(
                    &cfg,
                    &dir,
                    &replica_bytes,
                    &sidecar,
                    Arc::clone(&env),
                    canary.clone(),
                )
                .map_err(TrialError::new)?;
                let answers = engine.serve_deterministic(&reqs, BATCH);
                let totals = engine.totals();
                std::fs::remove_dir_all(&dir).ok();

                let answered = answers.len();
                let classes = classes_in_order(answers);
                let deviations = classes.iter().zip(clean.iter()).filter(|(a, c)| a != c).count();
                let correct =
                    classes.iter().zip(labels.iter()).filter(|(a, l)| **a == **l as u32).count();
                let verdict = Verdict::classify(totals.guard_trips, deviations);
                Ok(TrialOutcome::ok()
                    .with_metric("class", verdict.code())
                    .with_metric("answered", answered as f64)
                    .with_metric("deviations", deviations as f64)
                    .with_metric("correct", correct as f64)
                    .with_metric("trips", totals.guard_trips as f64)
                    .with_metric("reloads", totals.reloads as f64))
            })
        })
        .collect();
    let pooled = pre.run_plan(&plans);

    let mut rows = Vec::new();
    let mut table = TextTable::new(&[
        "Flips/replica",
        "Trials",
        "Masked",
        "Recovered",
        "Detected",
        "Silent",
        "Served acc",
        "Trips",
        "Reloads",
        "Lost",
        "Failed",
    ]);
    for (rate, outcomes) in rates().into_iter().zip(&pooled) {
        let mut row = RateRow {
            rate,
            trials: 0,
            counts: [0; 4],
            accuracy: 0.0,
            trips: 0.0,
            reloads: 0.0,
            lost: 0,
            failed: 0,
        };
        for o in outcomes {
            match o.metric("class").and_then(Verdict::from_code) {
                Some(v) if !o.is_failed() => {
                    row.trials += 1;
                    row.counts[v.code() as usize] += 1;
                    let answered = o.metric("answered").unwrap_or(0.0);
                    if answered != CORPUS as f64 {
                        row.lost += 1;
                    }
                    if answered > 0.0 {
                        row.accuracy += 100.0 * o.metric("correct").unwrap_or(0.0) / answered;
                    }
                    row.trips += o.metric("trips").unwrap_or(0.0);
                    row.reloads += o.metric("reloads").unwrap_or(0.0);
                }
                _ => row.failed += 1,
            }
        }
        if row.trials > 0 {
            let n = row.trials as f64;
            row.accuracy /= n;
            row.trips /= n;
            row.reloads /= n;
        }
        table.row(vec![
            row.rate.to_string(),
            row.trials.to_string(),
            row.get(Verdict::Masked).to_string(),
            row.get(Verdict::Recovered).to_string(),
            row.get(Verdict::Detected).to_string(),
            row.get(Verdict::Silent).to_string(),
            pct(row.accuracy),
            format!("{:.2}", row.trips),
            format!("{:.2}", row.reloads),
            row.lost.to_string(),
            row.failed.to_string(),
        ]);
        rows.push(row);
    }
    (rows, table)
}

/// Zero-rate sanity: with no flips, every trial is masked — the guards
/// never false-trip on clean replicas and no answer deviates.
pub fn rate_zero_all_masked(rows: &[RateRow]) -> bool {
    rows.first().is_some_and(|r| {
        r.rate == 0 && r.get(Verdict::Masked) == r.trials && r.trips == 0.0 && r.failed == 0
    })
}

/// At the highest injection rate the guards actually fire: some trial
/// was classified recovered or detected (trips observed).
pub fn guards_fire_at_max_rate(rows: &[RateRow]) -> bool {
    rows.last().is_some_and(|r| r.get(Verdict::Recovered) + r.get(Verdict::Detected) > 0)
}

/// The exactly-once contract held everywhere: no trial lost a request.
pub fn no_request_lost(rows: &[RateRow]) -> bool {
    rows.iter().all(|r| r.lost == 0)
}

/// Fraction (percent) of classified trials at each rate where failover
/// kept every answer clean despite a trip — the recovery win the
/// serving stack adds over detection alone.
pub fn recovered_rate(row: &RateRow) -> f64 {
    if row.trials == 0 {
        return 0.0;
    }
    100.0 * row.get(Verdict::Recovered) as f64 / row.trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;

    #[test]
    fn verdict_codes_roundtrip() {
        for v in [Verdict::Masked, Verdict::Recovered, Verdict::Detected, Verdict::Silent] {
            assert_eq!(Verdict::from_code(v.code()), Some(v));
        }
        assert_eq!(Verdict::from_code(9.0), None);
    }

    #[test]
    fn classify_covers_the_quadrants() {
        assert_eq!(Verdict::classify(0, 0), Verdict::Masked);
        assert_eq!(Verdict::classify(2, 0), Verdict::Recovered);
        assert_eq!(Verdict::classify(1, 3), Verdict::Detected);
        assert_eq!(Verdict::classify(0, 1), Verdict::Silent);
    }

    #[test]
    fn sweep_smoke() {
        let pre = Prebaked::new(Budget::smoke());
        let (rows, _) = serving_table(&pre);
        assert_eq!(rows.len(), rates().len());
        for row in &rows {
            assert_eq!(row.failed, 0, "rate {}", row.rate);
            assert_eq!(row.trials, trials_per_rate(&pre));
        }
        assert!(rate_zero_all_masked(&rows), "clean pool must stay masked");
        assert!(guards_fire_at_max_rate(&rows), "16 flips/replica never tripped a guard");
        assert!(no_request_lost(&rows), "a request went unanswered");
    }
}
