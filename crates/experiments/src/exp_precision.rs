//! Cross-dtype equivalent injection — the precision extension of the
//! paper's Figure 2 / Table VII axis.
//!
//! The paper studies 16/32/64-bit checkpoints by drawing *absolute* bit
//! positions per width. This experiment asks the sharper question: what
//! happens when the **same logical weight** receives the **same
//! format-relative bit flip** in every storage format? Bit positions are
//! named relative to the IEEE-754 field layout (exponent MSB, exponent
//! LSB, mantissa MSB, …) and resolved per format through
//! [`Precision::field_map`], and the corrupted weight is pinned across
//! formats by deriving the injector seed from `(stratum, trial)` alone —
//! the format never enters the seed, so trial *i* of the f16 cell flips
//! the same tensor entry as trial *i* of the f64 cell.
//!
//! Per `(format, stratum)` cell the table reports:
//!
//! * **Masked** — the flip vanished at load time: the engine computes in
//!   f32, so an f64 low-mantissa flip can round away when the stored
//!   value narrows (`old as f32 == new as f32` bit-for-bit).
//! * **N-EV** — the resumed training collapsed on a NaN/extreme value.
//! * **RWC** — restarted with no change: final accuracy exactly equals
//!   the deterministic error-free baseline *of that storage dtype*.
//!
//! The headline effect is exponent-width-driven: at the shared
//! `exp-msb` stratum a bfloat16 flip scales a sub-unit weight by
//! ~2^128 (extreme → collapse) while the same flip in binary16's 5-bit
//! exponent scales it by only ~2^16 (large but finite → absorbed), so
//! the two 16-bit formats diverge despite equal storage width.

use crate::runner::{combo_seed, CellPlan, Prebaked};
use crate::stats::percent;
use crate::table::{pct, TextTable};
use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode, LocationSelection};
use sefi_float::{BitRange, Precision};
use sefi_frameworks::FrameworkKind;
use sefi_hdf5::Dtype;
use sefi_models::ModelKind;
use sefi_telemetry::TrialOutcome;

/// A bit position named relative to the IEEE-754 field layout, resolvable
/// to an absolute bit index in any supported format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelBit {
    /// The exponent's most significant bit — the paper's critical bit.
    ExpMsb,
    /// One below the exponent MSB.
    BelowExpMsb,
    /// The exponent's least significant bit (a ×2 / ÷2 perturbation).
    ExpLsb,
    /// The mantissa's most significant bit (a ±50% relative perturbation).
    ManMsb,
    /// The mantissa's least significant bit (the smallest perturbation).
    ManLsb,
    /// The sign bit.
    Sign,
}

impl RelBit {
    /// All strata, table order: most to least significant.
    pub fn all() -> [RelBit; 6] {
        [
            RelBit::Sign,
            RelBit::ExpMsb,
            RelBit::BelowExpMsb,
            RelBit::ExpLsb,
            RelBit::ManMsb,
            RelBit::ManLsb,
        ]
    }

    /// Stable label (also the cell-key/seed component).
    pub fn label(self) -> &'static str {
        match self {
            RelBit::Sign => "sign",
            RelBit::ExpMsb => "exp-msb",
            RelBit::BelowExpMsb => "exp-msb-1",
            RelBit::ExpLsb => "exp-lsb",
            RelBit::ManMsb => "man-msb",
            RelBit::ManLsb => "man-lsb",
        }
    }

    /// The absolute bit index of this stratum at precision `p`.
    pub fn resolve(self, p: Precision) -> u32 {
        let m = p.field_map();
        match self {
            RelBit::Sign => m.sign_bit,
            RelBit::ExpMsb => m.exponent_hi,
            RelBit::BelowExpMsb => m.exponent_hi - 1,
            RelBit::ExpLsb => m.exponent_lo,
            RelBit::ManMsb => m.mantissa_hi,
            RelBit::ManLsb => m.mantissa_lo,
        }
    }
}

/// The swept storage formats, table order, with their short labels.
pub fn formats() -> [(Dtype, Precision, &'static str); 4] {
    [
        (Dtype::F16, Precision::Fp16, "f16"),
        (Dtype::BF16, Precision::Bf16, "bf16"),
        (Dtype::F32, Precision::Fp32, "f32"),
        (Dtype::F64, Precision::Fp64, "f64"),
    ]
}

/// One `(format, stratum)` row of the sweep.
#[derive(Debug, Clone)]
pub struct PrecisionRow {
    /// Storage dtype.
    pub dtype: Dtype,
    /// Its injection precision.
    pub precision: Precision,
    /// Format label (`f16`/`bf16`/`f32`/`f64`).
    pub format: &'static str,
    /// The relative stratum.
    pub rel: RelBit,
    /// The resolved absolute bit index in this format.
    pub bit: u32,
    /// Trainings run.
    pub trainings: usize,
    /// Flips masked by the load-time narrowing to the f32 engine.
    pub masked: usize,
    /// Trainings that collapsed on a NaN/extreme value.
    pub nev: usize,
    /// Restarts with final accuracy exactly at the dtype's baseline.
    pub rwc: usize,
    /// Trials that failed to complete (excluded from the three counts).
    pub failed: usize,
}

/// The format-independent injector seed for `(stratum, trial)`: every
/// format's cell uses this same seed at the same trial index, so the
/// location/entry draw — and therefore the corrupted logical weight — is
/// identical across formats (dataset paths and lengths do not depend on
/// the storage dtype).
pub fn equivalent_seed(rel: RelBit, trial: usize) -> u64 {
    combo_seed(
        FrameworkKind::Chainer,
        ModelKind::AlexNet,
        &format!("prec-equiv-{}", rel.label()),
        trial,
    )
}

/// Declare one `(format, stratum)` cell, keyed `prec-{format}-{stratum}`.
pub fn precision_plan<'p>(
    pre: &'p Prebaked,
    dtype: Dtype,
    precision: Precision,
    format: &'static str,
    rel: RelBit,
    trials: usize,
) -> CellPlan<'p> {
    let fw = FrameworkKind::Chainer;
    let model = ModelKind::AlexNet;
    // Precompute the dtype's deterministic baseline before the pool
    // dispatches, so trial closures never train a baseline mid-pool.
    pre.baseline_final_accuracy(model, dtype);
    let pristine = pre.checkpoint_shared(fw, model, dtype);
    let bit = rel.resolve(precision);
    let cell = format!("prec-{format}-{}", rel.label());
    CellPlan::new("precision", cell, fw, model, trials, move |trial, _seed| {
        let mut ck = (*pristine).clone();
        // One flip pinned to the stratum's absolute bit; NaN allowed (the
        // point is to observe what the bit does) and the seed shared
        // across formats (see `equivalent_seed`). Scoped to the model
        // parameters: format-relative strata are only meaningful on
        // real-valued datasets, and the integer bookkeeping scalars
        // (e.g. `updater/epoch`) corrupt through a different bit map.
        let mut cfg =
            CorrupterConfig::bit_flips_full_range(1, precision, equivalent_seed(rel, trial));
        cfg.mode = CorruptionMode::BitRange(BitRange { first_bit: bit, last_bit: bit });
        cfg.locations = LocationSelection::Listed(vec!["predictor".to_string()]);
        let report = Corrupter::new(cfg)?.corrupt(&mut ck)?;
        // Masked at load: the f32 engine sees the same weight bits.
        let masked = report
            .records
            .first()
            .map(|r| (r.old_value as f32).to_bits() == (r.new_value as f32).to_bits())
            .unwrap_or(false);
        let out = pre.try_resume(fw, model, &ck, pre.budget().resume_epochs)?;
        let mut outcome = TrialOutcome::ok()
            .with_collapsed(out.collapsed())
            .with_metric("masked", if masked { 1.0 } else { 0.0 })
            .with_counters(report.injections, report.nan_redraws, report.skipped);
        if let Some(acc) = out.final_accuracy() {
            outcome = outcome.with_accuracy(acc);
        }
        Ok(outcome)
    })
}

/// Fold one cell's outcomes into its row.
fn assemble_row(
    pre: &Prebaked,
    dtype: Dtype,
    precision: Precision,
    format: &'static str,
    rel: RelBit,
    outcomes: &[TrialOutcome],
) -> PrecisionRow {
    let baseline = pre.baseline_final_accuracy(ModelKind::AlexNet, dtype);
    let ok: Vec<&TrialOutcome> = outcomes.iter().filter(|o| !o.is_failed()).collect();
    let failed = outcomes.len() - ok.len();
    let masked = ok
        .iter()
        .filter(|o| o.metrics.iter().any(|m| m.name == "masked" && m.value == 1.0))
        .count();
    let nev = ok.iter().filter(|o| o.collapsed).count();
    let rwc = ok.iter().filter(|o| o.final_accuracy == Some(baseline)).count();
    PrecisionRow {
        dtype,
        precision,
        format,
        rel,
        bit: rel.resolve(precision),
        trainings: outcomes.len(),
        masked,
        nev,
        rwc,
        failed,
    }
}

/// Shared table renderer, so fixed and resumed runs emit identical bytes
/// from identical outcomes.
fn render(rows: &[PrecisionRow]) -> TextTable {
    let mut table = TextTable::new(&[
        "Format",
        "Width",
        "Stratum",
        "Bit",
        "Trainings",
        "Masked",
        "N-EV",
        "RWC",
        "RWC%",
        "Failed",
    ]);
    for r in rows {
        table.row(vec![
            r.format.to_string(),
            r.precision.width().to_string(),
            r.rel.label().to_string(),
            r.bit.to_string(),
            r.trainings.to_string(),
            r.masked.to_string(),
            r.nev.to_string(),
            r.rwc.to_string(),
            pct(percent(r.rwc, r.trainings - r.failed)),
            r.failed.to_string(),
        ]);
    }
    table
}

/// Run the full sweep: all `formats() × RelBit::all()` cells through one
/// scheduler pool, `pre.budget().trials` trainings each.
pub fn precision_table(pre: &Prebaked) -> (Vec<PrecisionRow>, TextTable) {
    precision_table_for(pre, &formats())
}

/// The sweep restricted to a subset of formats (the CI smoke runs
/// f32/bf16/f16 only); row and table layout match [`precision_table`].
pub fn precision_table_for(
    pre: &Prebaked,
    formats: &[(Dtype, Precision, &'static str)],
) -> (Vec<PrecisionRow>, TextTable) {
    let trials = pre.budget().trials;
    let mut specs = Vec::new();
    for &(dtype, precision, format) in formats {
        for rel in RelBit::all() {
            specs.push((dtype, precision, format, rel));
        }
    }
    let plans: Vec<CellPlan<'_>> = specs
        .iter()
        .map(|&(dtype, precision, format, rel)| {
            precision_plan(pre, dtype, precision, format, rel, trials)
        })
        .collect();
    let pooled = pre.run_plan(&plans);
    let rows: Vec<PrecisionRow> = specs
        .iter()
        .zip(&pooled)
        .map(|(&(dtype, precision, format, rel), outcomes)| {
            assemble_row(pre, dtype, precision, format, rel, outcomes)
        })
        .collect();
    let table = render(&rows);
    (rows, table)
}

/// The headline claim: at the shared `exp-msb` stratum the two 16-bit
/// formats diverge — bfloat16's 8-bit exponent turns the flip into an
/// extreme value strictly more often than binary16's 5-bit exponent does.
pub fn exponent_width_divergence(rows: &[PrecisionRow]) -> bool {
    let rate = |format: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.format == format && r.rel == RelBit::ExpMsb && r.trainings > r.failed)
            .map(|r| percent(r.nev, r.trainings - r.failed))
    };
    match (rate("f16"), rate("bf16")) {
        (Some(f16), Some(bf16)) => bf16 > f16,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    #[test]
    fn strata_resolve_to_distinct_in_range_bits() {
        for (_, p, _) in formats() {
            let bits: Vec<u32> = RelBit::all().iter().map(|r| r.resolve(p)).collect();
            for (i, &b) in bits.iter().enumerate() {
                assert!(b < p.width(), "{p:?} stratum {i} out of range");
                assert!(!bits[..i].contains(&b), "{p:?} stratum {i} collides");
            }
        }
        // The paper's critical bit, per format.
        assert_eq!(RelBit::ExpMsb.resolve(Precision::Fp16), 14);
        assert_eq!(RelBit::ExpMsb.resolve(Precision::Bf16), 14);
        assert_eq!(RelBit::ExpMsb.resolve(Precision::Fp32), 30);
        assert_eq!(RelBit::ExpMsb.resolve(Precision::Fp64), 62);
    }

    #[test]
    fn same_trial_flips_the_same_weight_in_every_format() {
        // The equivalence contract: with the format-independent seed, the
        // injector draws the same (dataset, entry) in every format.
        let pre = Prebaked::new(Budget::smoke());
        let fw = FrameworkKind::Chainer;
        let model = ModelKind::AlexNet;
        for trial in 0..3 {
            let mut drawn = Vec::new();
            for (dtype, precision, _) in formats() {
                let mut ck = (*pre.checkpoint_shared(fw, model, dtype)).clone();
                let bit = RelBit::ExpLsb.resolve(precision);
                let mut cfg = CorrupterConfig::bit_flips_full_range(
                    1,
                    precision,
                    equivalent_seed(RelBit::ExpLsb, trial),
                );
                cfg.mode = CorruptionMode::BitRange(BitRange { first_bit: bit, last_bit: bit });
                cfg.locations = LocationSelection::Listed(vec!["predictor".to_string()]);
                let report = Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();
                let r = &report.records[0];
                drawn.push((r.location.clone(), r.entry_index));
            }
            assert!(
                drawn.windows(2).all(|w| w[0] == w[1]),
                "trial {trial} drew different weights across formats: {drawn:?}"
            );
        }
    }

    #[test]
    fn exponent_msb_diverges_between_the_16_bit_formats() {
        // bf16's exp-MSB flip scales a sub-unit weight by ~2^128 (extreme
        // value → collapse); f16's by at most ~2^16 (finite, absorbed).
        let pre = Prebaked::new(Budget::smoke());
        let subset = [(Dtype::F16, Precision::Fp16, "f16"), (Dtype::BF16, Precision::Bf16, "bf16")];
        let (rows, _) = precision_table_for(&pre, &subset);
        assert!(exponent_width_divergence(&rows), "{rows:?}");
        let bf16 = rows.iter().find(|r| r.format == "bf16" && r.rel == RelBit::ExpMsb).unwrap();
        assert!(bf16.nev > 0, "bf16 exp-MSB flips must collapse: {bf16:?}");
    }

    #[test]
    fn mantissa_lsb_is_masked_only_where_narrowing_drops_it() {
        // The f32 engine keeps 23 mantissa bits: an f64 man-LSB flip (bit
        // 0 of 52) always rounds away at load; an f32/f16/bf16 man-LSB
        // flip always survives (widening is exact).
        let pre = Prebaked::new(Budget::smoke());
        let (rows, _) = precision_table_for(&pre, &formats());
        for r in rows.iter().filter(|r| r.rel == RelBit::ManLsb) {
            let ok = r.trainings - r.failed;
            if r.dtype == Dtype::F64 {
                assert_eq!(r.masked, ok, "f64 man-LSB flips narrow away: {r:?}");
            } else {
                assert_eq!(r.masked, 0, "{} man-LSB flips are engine-visible: {r:?}", r.format);
            }
        }
    }
}
