//! Adaptive sequential-stopping campaign execution.
//!
//! Fixed-budget campaigns spend the same number of trainings on every
//! table cell, but most cells answer long before the budget runs out: a
//! bit range that has collapsed every one of its first few resumes is not
//! going to stop collapsing at trial 200. This module adds a
//! [`StoppingRule`] layer over [`CellPlan`]/[`Prebaked::run_plan`]: trials
//! run in **waves**, and after each completed wave the cell's
//! classification rate gets a Wilson-score confidence interval. The cell
//! stops as soon as the interval is narrower than the configured target
//! width (or a hard trial cap is reached). Cells with extreme rates — the
//! common case in the paper's tables, where ranges either always or never
//! collapse — stop after the first wave; only genuinely mixed cells spend
//! the full budget.
//!
//! # Determinism
//!
//! Adaptive execution preserves the scheduler's byte-identical-results
//! guarantee. Seeds are unchanged (`combo_seed(fw, model, cell, trial)`),
//! trials within a wave are dispatched through the same positional
//! work-stealing pool as fixed plans, and the stopping decision is the
//! *pure function* [`replay`] of the classified outcome sequence — it
//! consults no clock, RNG, thread id, or arrival order. Two runs that
//! record the same outcomes therefore stop at the same wave; a resumed run
//! replays recorded outcomes from the manifest and reproduces the identical
//! stopping trace. See DESIGN.md §10 for the full argument.
//!
//! # Multi-process sharding
//!
//! [`Prebaked::run_adaptive_sharded`] runs the same wave loop cooperatively
//! across worker processes sharing one results directory. Workers claim
//! `(cell, wave)` units via [`LeaseDir`] lease files next to the manifest,
//! append outcomes to per-worker manifest shard files, and observe each
//! other's progress by re-reading the merged manifest. Because trials are
//! deterministic and the manifest merge dedups by seed, leases are purely
//! advisory: a `kill -9`'d worker's lease expires by heartbeat age and its
//! wave is simply re-claimed, with already-recorded trials served from its
//! shard file.

use crate::runner::{CellPlan, Prebaked};
use sefi_telemetry::lease::LeaseDir;
use sefi_telemetry::{digest64, Event, TrialOutcome};
use std::time::Duration;

/// When to stop sampling a cell: run trials in waves of `wave`, and after
/// each completed wave stop if the Wilson interval on the classification
/// rate is at most `target_width` wide (never before `min_trials`, always
/// by `max_trials`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// Trials dispatched per wave (the decision granularity).
    pub wave: usize,
    /// Stop once the Wilson interval width is ≤ this.
    pub target_width: f64,
    /// Never stop on width before this many trials (defaults to one wave).
    pub min_trials: usize,
    /// Hard cap: the cell always stops by this many trials.
    pub max_trials: usize,
    /// Normal quantile of the interval (1.96 ≈ 95% confidence).
    pub z: f64,
}

impl StoppingRule {
    /// A rule stopping on `target_width` with waves of `wave` trials and a
    /// hard cap of `max_trials`. Panics on degenerate parameters.
    pub fn new(wave: usize, target_width: f64, max_trials: usize) -> Self {
        let rule = StoppingRule { wave, target_width, min_trials: wave, max_trials, z: 1.96 };
        rule.validate();
        rule
    }

    /// The convention used by the adaptive experiment drivers: waves of
    /// half the fixed budget, so a decisive cell stops at half cost and an
    /// ambiguous one pays at most the fixed budget.
    pub fn halving(max_trials: usize, target_width: f64) -> Self {
        Self::new(max_trials.div_ceil(2).max(1), target_width, max_trials)
    }

    /// Override the minimum trial count before a width stop.
    pub fn with_min_trials(mut self, min_trials: usize) -> Self {
        self.min_trials = min_trials;
        self.validate();
        self
    }

    /// Override the interval's normal quantile.
    pub fn with_z(mut self, z: f64) -> Self {
        self.z = z;
        self.validate();
        self
    }

    fn validate(&self) {
        assert!(self.wave >= 1, "wave must be ≥ 1");
        assert!(self.max_trials >= 1, "max_trials must be ≥ 1");
        assert!(self.min_trials <= self.max_trials, "min_trials exceeds max_trials");
        assert!(
            self.target_width > 0.0 && self.target_width <= 1.0,
            "target_width must be in (0, 1]"
        );
        assert!(self.z > 0.0 && self.z.is_finite(), "z must be positive and finite");
    }

    /// Cumulative trial count at the end of wave `k` (0-based):
    /// `min((k+1)·wave, max_trials)`. The final wave may be partial.
    pub fn boundary(&self, k: usize) -> usize {
        ((k + 1).saturating_mul(self.wave)).min(self.max_trials)
    }

    /// Number of waves a run-to-cap cell executes.
    pub fn num_waves(&self) -> usize {
        self.max_trials.div_ceil(self.wave)
    }

    /// The `[start, end)` trial-index range of wave `k`.
    pub fn wave_range(&self, k: usize) -> (usize, usize) {
        let start = (k.saturating_mul(self.wave)).min(self.max_trials);
        (start, self.boundary(k))
    }

    /// Largest wave boundary ≤ `n`: the prefix of `n` recorded trials that
    /// full-wave stopping decisions may consume. Sharded workers use this
    /// to ignore another worker's half-finished wave.
    pub fn aligned_prefix(&self, n: usize) -> usize {
        let n = n.min(self.max_trials);
        if n == self.max_trials {
            n
        } else {
            n - n % self.wave
        }
    }
}

/// Wilson score interval for a binomial proportion: `successes` of `n`,
/// normal quantile `z`. Returns the conventional uninformative `(0, 1)`
/// for `n = 0` (a cell whose trials all failed classification still makes
/// progress toward its cap instead of dividing by zero).
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The stopping decision taken at one wave boundary. Compared exactly in
/// determinism tests: every field is a pure function of the classified
/// outcome prefix, so equal outcomes imply equal stats bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveStat {
    /// Wave index (0-based).
    pub wave: usize,
    /// Cumulative trials dispatched through this wave.
    pub trials: usize,
    /// Trials the classifier accepted (failed trials are excluded).
    pub classified: u64,
    /// Classified trials counted as successes.
    pub successes: u64,
    /// Wilson interval lower bound.
    pub ci_lo: f64,
    /// Wilson interval upper bound.
    pub ci_hi: f64,
    /// Interval width (`ci_hi - ci_lo`).
    pub width: f64,
    /// Whether the cell stopped at this wave.
    pub stopped: bool,
}

/// A cell's complete stopping trace: one [`WaveStat`] per evaluated wave.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrace {
    /// Per-wave decisions, in wave order.
    pub waves: Vec<WaveStat>,
    /// Trials consumed when stopped; trials evaluated so far otherwise.
    pub trials_used: usize,
    /// Stopped by the hard cap without reaching the target width.
    pub capped: bool,
}

impl CellTrace {
    /// Whether the trace has reached a stopping decision.
    pub fn stopped(&self) -> bool {
        self.waves.last().is_some_and(|w| w.stopped)
    }
}

/// Replay the stopping rule over a classified outcome sequence:
/// `classes[t]` is trial `t`'s classification (`None` = excluded, e.g. a
/// recorded failure). Only full-wave prefixes are evaluated; a trailing
/// partial wave contributes nothing. **Pure**: the trace depends on
/// nothing but `rule` and `classes`, which is the whole determinism
/// argument — any two processes that agree on recorded outcomes agree on
/// the stopping trace.
pub fn replay(rule: &StoppingRule, classes: &[Option<bool>]) -> CellTrace {
    let mut waves = Vec::new();
    for k in 0..rule.num_waves() {
        let n_k = rule.boundary(k);
        if n_k > classes.len() {
            break;
        }
        let prefix = &classes[..n_k];
        let classified = prefix.iter().filter(|c| c.is_some()).count() as u64;
        let successes = prefix.iter().filter(|c| **c == Some(true)).count() as u64;
        let (ci_lo, ci_hi) = wilson_interval(successes, classified, rule.z);
        let width = ci_hi - ci_lo;
        let narrow_enough = n_k >= rule.min_trials && width <= rule.target_width;
        let at_cap = n_k >= rule.max_trials;
        let stopped = narrow_enough || at_cap;
        waves.push(WaveStat {
            wave: k,
            trials: n_k,
            classified,
            successes,
            ci_lo,
            ci_hi,
            width,
            stopped,
        });
        if stopped {
            return CellTrace { waves, trials_used: n_k, capped: at_cap && !narrow_enough };
        }
    }
    let seen = waves.last().map_or(0, |w| w.trials);
    CellTrace { waves, trials_used: seen, capped: false }
}

/// A boxed outcome classifier: `Some(true)` counts as a success,
/// `Some(false)` as a counted non-success, `None` excludes the trial.
type Classifier<'p> = Box<dyn Fn(&TrialOutcome) -> Option<bool> + Send + Sync + 'p>;

/// A [`CellPlan`] under adaptive stopping: the plan, its rule, and the
/// classifier mapping each outcome to a success (`Some(true)`), a failure
/// of the measured property (`Some(false)`), or an exclusion (`None`,
/// e.g. a trial recorded as failed — harness faults must not masquerade
/// as statistical evidence).
pub struct AdaptiveCell<'p> {
    plan: CellPlan<'p>,
    rule: StoppingRule,
    classify: Classifier<'p>,
}

impl<'p> AdaptiveCell<'p> {
    /// Pair a plan with a stopping rule. The plan's declared trial count
    /// must equal the rule's cap — the cap is the resume-compatible
    /// fixed-budget equivalent.
    pub fn new(
        plan: CellPlan<'p>,
        rule: StoppingRule,
        classify: impl Fn(&TrialOutcome) -> Option<bool> + Send + Sync + 'p,
    ) -> Self {
        assert_eq!(
            plan.trials(),
            rule.max_trials,
            "plan trial count must equal the stopping rule's max_trials"
        );
        AdaptiveCell { plan, rule, classify: Box::new(classify) }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &CellPlan<'p> {
        &self.plan
    }

    /// The cell's stopping rule.
    pub fn rule(&self) -> &StoppingRule {
        &self.rule
    }
}

/// The classifier shared by the collapse-counting experiments (Figure 2,
/// Tables IV/VII): a non-failed trial is a success iff it collapsed.
pub fn classify_collapsed(o: &TrialOutcome) -> Option<bool> {
    if o.is_failed() {
        None
    } else {
        Some(o.collapsed)
    }
}

/// One adaptively-sampled cell's result: the outcomes actually consumed
/// (exactly `trace.trials_used` of them, a prefix of the fixed-budget
/// trial sequence) and the stopping trace that ended the cell.
pub struct AdaptiveCellResult {
    /// Trial outcomes `0..trace.trials_used`, in trial order.
    pub outcomes: Vec<TrialOutcome>,
    /// The per-wave stopping decisions.
    pub trace: CellTrace,
}

/// How a sharded worker process participates in a multi-process adaptive
/// campaign.
#[derive(Debug, Clone)]
pub struct ShardWorkerConfig {
    /// Heartbeat TTL after which another worker may break this worker's
    /// lease (survives `kill -9`: a dead worker stops heartbeating).
    pub lease_ttl: Duration,
    /// How long to sleep when every live cell's current wave is leased to
    /// someone else.
    pub poll: Duration,
}

impl Default for ShardWorkerConfig {
    fn default() -> Self {
        ShardWorkerConfig { lease_ttl: Duration::from_secs(30), poll: Duration::from_millis(200) }
    }
}

impl Prebaked {
    /// Run `cells` adaptively: each round dispatches the next wave of
    /// every still-live cell through one pooled [`Prebaked::run_units`]
    /// call (no barrier between cells within the round), then replays
    /// each cell's stopping rule over its accumulated outcomes. Emits a
    /// [`Event::WaveEnd`] per completed wave under a campaign. Results
    /// are positionally deterministic exactly like [`Prebaked::run_plan`]:
    /// same budget + same recorded outcomes ⇒ same stopping trace and
    /// byte-identical assembled tables, at any thread count and across
    /// kill/resume.
    pub fn run_adaptive(&self, cells: &[AdaptiveCell<'_>]) -> Vec<AdaptiveCellResult> {
        let plans: Vec<&CellPlan<'_>> = cells.iter().map(|c| c.plan()).collect();
        let mut outcomes: Vec<Vec<TrialOutcome>> = (0..cells.len()).map(|_| Vec::new()).collect();
        let mut traces: Vec<CellTrace> = (0..cells.len())
            .map(|_| CellTrace { waves: Vec::new(), trials_used: 0, capped: false })
            .collect();
        loop {
            // Collect the next wave of every live cell into one pool.
            let mut spans: Vec<(usize, usize, usize)> = Vec::new();
            let mut units: Vec<(usize, usize)> = Vec::new();
            for (ci, cell) in cells.iter().enumerate() {
                if traces[ci].stopped() {
                    continue;
                }
                let k = traces[ci].waves.len();
                let (start, end) = cell.rule.wave_range(k);
                debug_assert_eq!(start, outcomes[ci].len());
                spans.push((ci, start, end));
                units.extend((start..end).map(|t| (ci, t)));
            }
            if units.is_empty() {
                break;
            }
            let mut flat = self.run_units(&plans, units).into_iter();
            for &(ci, start, end) in &spans {
                outcomes[ci].extend(flat.by_ref().take(end - start));
                self.advance_cell(&cells[ci], &outcomes[ci], &mut traces[ci]);
            }
        }
        outcomes
            .into_iter()
            .zip(traces)
            .map(|(mut outs, trace)| {
                outs.truncate(trace.trials_used);
                AdaptiveCellResult { outcomes: outs, trace }
            })
            .collect()
    }

    /// Re-replay a cell's rule over its accumulated outcomes and emit
    /// `WaveEnd` for each newly completed wave.
    fn advance_cell(
        &self,
        cell: &AdaptiveCell<'_>,
        outcomes: &[TrialOutcome],
        trace: &mut CellTrace,
    ) {
        let classes: Vec<Option<bool>> = outcomes.iter().map(|o| (cell.classify)(o)).collect();
        let next = replay(&cell.rule, &classes);
        for w in &next.waves[trace.waves.len()..] {
            self.emit_event(&Event::WaveEnd {
                experiment: cell.plan.experiment().to_string(),
                cell: cell.plan.cell().to_string(),
                wave: w.wave as u64,
                trials: w.trials as u64,
                classified: w.classified,
                successes: w.successes,
                ci_lo: w.ci_lo,
                ci_hi: w.ci_hi,
                width: w.width,
                stopped: w.stopped,
            });
        }
        *trace = next;
    }

    /// The multi-process variant of [`Prebaked::run_adaptive`]: this
    /// process is one worker of possibly many sharing the campaign's
    /// results directory. Requires a campaign (the manifest is the only
    /// inter-worker channel) opened with [`crate::CampaignConfig::shard_id`]
    /// when more than one worker runs concurrently.
    ///
    /// The loop per cell: re-read the merged manifest, replay the
    /// stopping rule over the longest recorded full-wave prefix, and if
    /// the cell is still live, try to claim the lease on its next wave and
    /// execute it. Cells stop in exactly the wave [`replay`] dictates, so
    /// every worker — and a later single-process resume — assembles the
    /// identical result. Lost workers are tolerated: their lease expires
    /// after `cfg.lease_ttl` without heartbeats, and whichever worker
    /// breaks it re-runs the wave, serving the dead worker's completed
    /// trials straight from its manifest shard.
    pub fn run_adaptive_sharded(
        &self,
        cells: &[AdaptiveCell<'_>],
        cfg: &ShardWorkerConfig,
    ) -> std::io::Result<Vec<AdaptiveCellResult>> {
        let digest = self
            .campaign_digest()
            .expect("run_adaptive_sharded requires a campaign (manifests are the shared state)");
        let results_dir = self.campaign_results_dir().expect("campaign has a results dir");
        let owner = std::process::id().to_string();
        let leases = LeaseDir::new(results_dir.join("leases"), owner, cfg.lease_ttl)?;
        let plans: Vec<&CellPlan<'_>> = cells.iter().map(|c| c.plan()).collect();
        let mut done: Vec<Option<AdaptiveCellResult>> = (0..cells.len()).map(|_| None).collect();
        loop {
            let mut all_done = true;
            let mut progressed = false;
            for (ci, cell) in cells.iter().enumerate() {
                if done[ci].is_some() {
                    continue;
                }
                let manifest = self
                    .campaign_manifest(cell.plan.experiment())
                    .expect("campaign manifests exist");
                manifest.reload()?;
                // The contiguous recorded trial prefix. A dead worker can
                // leave holes mid-wave; the prefix stops at the first hole
                // and the wave re-runs (recorded trials are served).
                let mut recorded: Vec<TrialOutcome> = Vec::new();
                for t in 0..cell.rule.max_trials {
                    match manifest.lookup(cell.plan.seed(t), &digest) {
                        Some(rec) => recorded.push(rec.outcome),
                        None => break,
                    }
                }
                let aligned = cell.rule.aligned_prefix(recorded.len());
                let classes: Vec<Option<bool>> =
                    recorded[..aligned].iter().map(|o| (cell.classify)(o)).collect();
                let trace = replay(&cell.rule, &classes);
                if trace.stopped() {
                    recorded.truncate(trace.trials_used);
                    done[ci] = Some(AdaptiveCellResult { outcomes: recorded, trace });
                    progressed = true;
                    continue;
                }
                all_done = false;
                // Claim and run the cell's next wave. The key digests the
                // free-form cell label into a filename-safe token.
                let k = trace.waves.len();
                let unit = digest64(&format!("{}/{}", cell.plan.experiment(), cell.plan.cell()));
                if let Some(_lease) = leases.try_claim(&format!("{unit}-w{k}"))? {
                    let (start, end) = cell.rule.wave_range(k);
                    let wave_outs = self.run_units(&plans, (start..end).map(|t| (ci, t)).collect());
                    // Emit this wave's decision from a fresh replay over
                    // prefix + wave (the lease means we completed it).
                    let mut classes: Vec<Option<bool>> =
                        recorded[..start].iter().map(|o| (cell.classify)(o)).collect();
                    classes.extend(wave_outs.iter().map(|o| (cell.classify)(o)));
                    let after = replay(&cell.rule, &classes);
                    if let Some(w) = after.waves.get(k) {
                        self.emit_event(&Event::WaveEnd {
                            experiment: cell.plan.experiment().to_string(),
                            cell: cell.plan.cell().to_string(),
                            wave: w.wave as u64,
                            trials: w.trials as u64,
                            classified: w.classified,
                            successes: w.successes,
                            ci_lo: w.ci_lo,
                            ci_hi: w.ci_hi,
                            width: w.width,
                            stopped: w.stopped,
                        });
                    }
                    progressed = true;
                }
            }
            if all_done {
                return Ok(done.into_iter().map(|r| r.expect("all cells resolved")).collect());
            }
            if !progressed {
                std::thread::sleep(cfg.poll);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_matches_known_values() {
        // n = 0 is the uninformative interval.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        // 0/2 at z = 1.96: upper bound ≈ 0.6576, lower exactly 0.
        let (lo, hi) = wilson_interval(0, 2, 1.96);
        assert_eq!(lo, 0.0);
        assert!((hi - 0.6576).abs() < 1e-3, "hi = {hi}");
        // Symmetry: 2/2 mirrors 0/2 around 1/2.
        let (lo2, hi2) = wilson_interval(2, 2, 1.96);
        assert!((lo2 - (1.0 - hi)).abs() < 1e-12);
        assert_eq!(hi2, 1.0);
        // Large n converges on p̂ and the width shrinks.
        let (lo, hi) = wilson_interval(500, 1000, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.07);
    }

    #[test]
    fn rule_boundaries_cover_the_cap_exactly() {
        let r = StoppingRule::new(4, 0.2, 10);
        assert_eq!(r.num_waves(), 3);
        assert_eq!(r.boundary(0), 4);
        assert_eq!(r.boundary(1), 8);
        assert_eq!(r.boundary(2), 10); // final partial wave
        assert_eq!(r.wave_range(2), (8, 10));
        assert_eq!(r.aligned_prefix(0), 0);
        assert_eq!(r.aligned_prefix(5), 4);
        assert_eq!(r.aligned_prefix(9), 8);
        assert_eq!(r.aligned_prefix(10), 10);
        assert_eq!(r.aligned_prefix(99), 10);
    }

    #[test]
    fn replay_stops_extreme_cells_after_one_wave() {
        let r = StoppingRule::new(2, 0.7, 4);
        // 0/2: width ≈ 0.658 ≤ 0.7 — stop after wave 0.
        let t = replay(&r, &[Some(false), Some(false), Some(false), Some(false)]);
        assert!(t.stopped());
        assert_eq!(t.trials_used, 2);
        assert_eq!(t.waves.len(), 1);
        assert!(!t.capped);
        // 1/2 at a tighter target: width ≈ 0.81, then 2/4 ≈ 0.70 — never
        // narrow enough, so the cap forces the stop.
        let r = StoppingRule::new(2, 0.6, 4);
        let t = replay(&r, &[Some(true), Some(false), Some(true), Some(false)]);
        assert!(t.stopped());
        assert_eq!(t.trials_used, 4);
        assert_eq!(t.waves.len(), 2);
        assert!(t.capped);
    }

    #[test]
    fn replay_ignores_partial_waves_and_is_prefix_stable() {
        let r = StoppingRule::new(2, 0.1, 6);
        let full = vec![Some(true), Some(true), Some(false), Some(true), Some(true), Some(false)];
        // A trailing partial wave contributes no decision.
        let t3 = replay(&r, &full[..3]);
        assert_eq!(t3.waves.len(), 1);
        assert!(!t3.stopped());
        assert_eq!(t3.trials_used, 2);
        // Longer prefixes extend the trace without rewriting it.
        let t4 = replay(&r, &full[..4]);
        let t6 = replay(&r, &full);
        assert_eq!(t4.waves[..], t6.waves[..2]);
        assert_eq!(t3.waves[..], t4.waves[..1]);
        assert!(t6.stopped() && t6.capped);
    }

    #[test]
    fn replay_excludes_failures_from_the_interval() {
        let r = StoppingRule::new(3, 0.9, 6);
        // Two failures + one success: n = 1, width ≈ 0.79 ≤ 0.9 → stop.
        let t = replay(&r, &[None, Some(true), None]);
        assert_eq!(t.waves[0].classified, 1);
        assert_eq!(t.waves[0].successes, 1);
        assert!(t.stopped());
        // All failures: n = 0 keeps the interval at full width; the cell
        // still terminates at the cap instead of looping.
        let t = replay(&r, &[None; 6]);
        assert!(t.stopped() && t.capped);
        assert_eq!(t.trials_used, 6);
        assert_eq!(t.waves.last().unwrap().width, 1.0);
    }

    #[test]
    fn classifier_excludes_failed_trials() {
        assert_eq!(classify_collapsed(&TrialOutcome::ok()), Some(false));
        assert_eq!(classify_collapsed(&TrialOutcome::ok().with_collapsed(true)), Some(true));
        assert_eq!(classify_collapsed(&TrialOutcome::failed("boom")), None);
    }
}
