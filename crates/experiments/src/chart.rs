//! Terminal line charts: render accuracy-vs-epoch series the way the
//! paper's figures show them, so the figure binaries are readable without
//! opening the CSVs.

use crate::exp_curves::Series;

/// Plot height in character rows.
const ROWS: usize = 14;

/// Render a set of series (accuracies in `[0, 1]` over epochs) as an ASCII
/// chart. Each series gets a marker character; overlapping points show the
/// later series' marker.
pub fn render_chart(series: &[Series]) -> String {
    const MARKERS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];
    let epochs: Vec<usize> = {
        let mut e: Vec<usize> =
            series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x)).collect();
        e.sort_unstable();
        e.dedup();
        e
    };
    if epochs.is_empty() {
        return String::from("(no data)\n");
    }
    let cols = epochs.len();
    let mut grid = vec![vec![' '; cols]; ROWS];
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(e, acc) in &s.points {
            let col = epochs.iter().position(|&x| x == e).expect("epoch enumerated");
            let clamped = acc.clamp(0.0, 1.0);
            let row = ((1.0 - clamped) * (ROWS - 1) as f64).round() as usize;
            grid[row][col] = marker;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            "100% |"
        } else if r == ROWS - 1 {
            "  0% |"
        } else if r == ROWS / 2 {
            " 50% |"
        } else {
            "     |"
        };
        out.push_str(label);
        for &c in row {
            out.push(' ');
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str("      ");
    for _ in 0..cols {
        out.push_str("--");
    }
    out.push('\n');
    out.push_str("epoch ");
    for &e in &epochs {
        out.push_str(&format!("{:>2}", e % 100));
    }
    out.push('\n');
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKERS[si % MARKERS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(usize, f64)]) -> Series {
        Series { label: label.to_string(), points: pts.to_vec() }
    }

    #[test]
    fn renders_markers_and_legend() {
        let chart = render_chart(&[
            series("error-free", &[(5, 1.0), (6, 0.9), (7, 1.0)]),
            series("1000 flips", &[(5, 0.0), (6, 0.5), (7, 0.8)]),
        ]);
        assert!(chart.contains("error-free"));
        assert!(chart.contains("1000 flips"));
        assert!(chart.contains('o'));
        assert!(chart.contains('x'));
        assert!(chart.contains("100% |"));
        assert!(chart.contains("  0% |"));
    }

    #[test]
    fn top_row_holds_the_best_accuracy() {
        let chart = render_chart(&[series("s", &[(0, 1.0)])]);
        let first_line = chart.lines().next().unwrap();
        assert!(first_line.contains('o'), "{first_line}");
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render_chart(&[]), "(no data)\n");
        assert_eq!(render_chart(&[series("s", &[])]), "(no data)\n");
    }

    #[test]
    fn out_of_range_accuracies_are_clamped() {
        let chart = render_chart(&[series("s", &[(0, 1.5), (1, -0.2)])]);
        assert!(chart.lines().next().unwrap().contains('o'));
    }
}
