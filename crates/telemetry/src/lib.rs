//! Campaign observability: a JSONL event sink, an in-memory trial
//! aggregator, and the crash-safe results manifest that makes campaigns
//! resumable.
//!
//! The experiment runner emits one [`Event`] per campaign/phase/trial
//! boundary into a [`JsonlSink`] (one JSON object per line, flushed per
//! event so a crash loses at most the line being written), feeds the same
//! per-trial facts into an [`Aggregator`] for the end-of-campaign summary,
//! and appends one [`TrialRecord`] per completed trial to a [`Manifest`].
//! On a rerun the manifest is loaded first and any trial whose
//! `combo_seed` (plus config digest) is already present is served from the
//! recorded [`TrialOutcome`] instead of being re-executed — so a campaign
//! killed halfway resumes where it stopped and reproduces byte-identical
//! final tables.

#![deny(missing_docs)]

pub mod lease;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};

/// A named scalar carried by a trial outcome, for experiment-specific
/// numbers that have no dedicated field (guard repair counts, propagation
/// summaries, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name, unique within one outcome.
    pub name: String,
    /// The value.
    pub value: f64,
}

/// Everything a single trial produced, captured losslessly enough that an
/// experiment can rebuild its table cell from recorded outcomes alone.
///
/// Floats round-trip exactly through the JSONL manifest (shortest-
/// round-trip formatting), which is what makes resumed campaigns emit
/// byte-identical tables. Non-finite values cannot be stored: JSON has no
/// representation for them, so derive them at table-build time instead
/// (e.g. the RWC deviation of a collapsed trial). A builder handed a
/// non-finite measurement — a corrupted resume really does produce NaN
/// accuracies — converts the outcome into a recorded failure instead of
/// panicking, so at campaign scale one poisoned trial costs one `failed`
/// row, not a dead worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Coarse outcome class, e.g. `"ok"`, `"collapsed"`, or
    /// [`FAILED_STATUS`]; feeds the aggregator's histogram.
    pub status: String,
    /// Why the trial failed (panic message or propagated error), present
    /// exactly when `status == FAILED_STATUS`. Records written before this
    /// field existed deserialize as `None`.
    pub failure: Option<String>,
    /// The trial's boolean verdict — training collapse for resume
    /// experiments, N-EV-in-weights for inference experiments.
    pub collapsed: bool,
    /// Final (or sole) accuracy, when the experiment measures one.
    pub final_accuracy: Option<f64>,
    /// Per-epoch accuracy curve, when the experiment records one.
    pub curve: Vec<f64>,
    /// Experiment-specific named scalars.
    pub metrics: Vec<Metric>,
    /// Injections that changed a value (from `InjectionReport`).
    pub injections: u64,
    /// Redrawn injection attempts (NaN avoidance / integer overflow).
    pub nan_redraws: u64,
    /// Attempts skipped by the probability gate.
    pub skipped: u64,
    /// Opaque experiment payload (e.g. an injection log as JSON) carried
    /// by trials that later experiments replay.
    pub payload: Option<String>,
}

/// The status string of a trial that did not produce a result (its body
/// panicked or returned an error). Failed trials are recorded in the
/// manifest so a resumed campaign skips them by default; they carry no
/// measurements, only a `failure` reason.
pub const FAILED_STATUS: &str = "failed";

impl TrialOutcome {
    /// A successful trial with no measurements attached yet.
    pub fn ok() -> Self {
        TrialOutcome {
            status: "ok".to_string(),
            failure: None,
            collapsed: false,
            final_accuracy: None,
            curve: Vec::new(),
            metrics: Vec::new(),
            injections: 0,
            nan_redraws: 0,
            skipped: 0,
            payload: None,
        }
    }

    /// A trial whose body panicked or errored instead of producing a
    /// result. Carries the reason; every measurement field stays empty.
    pub fn failed(reason: impl Into<String>) -> Self {
        let mut o = TrialOutcome::ok();
        o.status = FAILED_STATUS.to_string();
        o.failure = Some(reason.into());
        o
    }

    /// Whether this outcome records a failed (panicked/errored) trial.
    pub fn is_failed(&self) -> bool {
        self.status == FAILED_STATUS
    }

    /// Turn this outcome into a recorded failure because a builder was
    /// handed the non-finite measurement named `what`. The value is
    /// dropped (JSON cannot hold it); the status and reason make the trial
    /// a `failed` row a resumed campaign serves (or `--retry-failed`
    /// re-executes) instead of a panic that kills the worker process.
    fn reject_non_finite(mut self, what: &str) -> Self {
        self.status = FAILED_STATUS.to_string();
        self.failure = Some(format!("non-finite {what} cannot be recorded in the manifest"));
        self
    }

    /// Record the trial's boolean verdict; a `true` verdict also flips the
    /// status to `"collapsed"` so the histogram separates the two classes.
    /// A no-op on an already-failed outcome: a failure never reclassifies.
    pub fn with_collapsed(mut self, collapsed: bool) -> Self {
        if self.is_failed() {
            return self;
        }
        self.collapsed = collapsed;
        if collapsed {
            self.status = "collapsed".to_string();
        }
        self
    }

    /// Record a final accuracy. A non-finite value converts the outcome
    /// into a recorded failure (it cannot survive the JSON round-trip).
    pub fn with_accuracy(mut self, accuracy: f64) -> Self {
        if !accuracy.is_finite() {
            return self.reject_non_finite("final_accuracy");
        }
        self.final_accuracy = Some(accuracy);
        self
    }

    /// Record a per-epoch curve. Any non-finite point converts the outcome
    /// into a recorded failure.
    pub fn with_curve(mut self, curve: Vec<f64>) -> Self {
        if !curve.iter().all(|v| v.is_finite()) {
            return self.reject_non_finite("curve point");
        }
        self.curve = curve;
        self
    }

    /// Attach a named scalar. A non-finite value converts the outcome into
    /// a recorded failure.
    pub fn with_metric(mut self, name: &str, value: f64) -> Self {
        if !value.is_finite() {
            return self.reject_non_finite(&format!("metric {name:?}"));
        }
        self.metrics.push(Metric { name: name.to_string(), value });
        self
    }

    /// Copy the per-trial counters out of an injection report.
    pub fn with_counters(mut self, injections: u64, nan_redraws: u64, skipped: u64) -> Self {
        self.injections = injections;
        self.nan_redraws = nan_redraws;
        self.skipped = skipped;
        self
    }

    /// Attach an opaque payload.
    pub fn with_payload(mut self, payload: String) -> Self {
        self.payload = Some(payload);
        self
    }

    /// Look up a named scalar.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.name == name).map(|m| m.value)
    }
}

/// One completed trial — a single line of `results/<experiment>/manifest.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Experiment the trial belongs to (manifest directory name).
    pub experiment: String,
    /// Cell label within the experiment — the `combo_seed` label.
    pub cell: String,
    /// Framework id.
    pub framework: String,
    /// Model id.
    pub model: String,
    /// Trial index within the cell.
    pub trial: u64,
    /// The trial's `combo_seed` — the resume key.
    pub seed: u64,
    /// Digest of the campaign configuration the trial ran under; records
    /// from a different configuration are ignored on resume.
    pub config_digest: String,
    /// Wall-clock duration of the trial.
    pub duration_ns: u64,
    /// What the trial produced.
    pub outcome: TrialOutcome,
}

/// A telemetry event — one JSONL line in the campaign's event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A campaign began.
    CampaignStart {
        /// Campaign name.
        campaign: String,
        /// Budget name in force.
        budget: String,
        /// Digest of the campaign configuration.
        config_digest: String,
    },
    /// A campaign finished.
    CampaignEnd {
        /// Campaign name.
        campaign: String,
        /// Trials executed this run.
        trials_run: u64,
        /// Trials served from the manifest.
        trials_cached: u64,
        /// Trials (executed or cached) whose outcome is failed.
        trials_failed: u64,
        /// Campaign wall-clock duration.
        duration_ns: u64,
    },
    /// A named phase (table/figure) began.
    PhaseStart {
        /// Phase name.
        phase: String,
    },
    /// A named phase finished.
    PhaseEnd {
        /// Phase name.
        phase: String,
        /// Phase wall-clock duration.
        duration_ns: u64,
    },
    /// A trial is about to execute (not emitted for manifest hits).
    TrialStart {
        /// Experiment name.
        experiment: String,
        /// Cell label.
        cell: String,
        /// Trial index.
        trial: u64,
        /// The trial's `combo_seed`.
        seed: u64,
    },
    /// A trial's body panicked or errored; the campaign recorded the
    /// failure and moved on. Followed by a `TrialEnd` with
    /// `status == "failed"`, so the start/end pairing stays intact.
    TrialFailed {
        /// Experiment name.
        experiment: String,
        /// Cell label.
        cell: String,
        /// Trial index.
        trial: u64,
        /// The trial's `combo_seed`.
        seed: u64,
        /// Panic message or propagated error, with injection context.
        reason: String,
        /// Wall-clock spent before the trial died.
        duration_ns: u64,
    },
    /// An adaptive campaign finished one wave of a cell and evaluated its
    /// stopping rule. The decision is a pure function of the recorded
    /// trial outcomes, so a resumed or sharded campaign replays the exact
    /// same sequence of `WaveEnd` decisions.
    WaveEnd {
        /// Experiment name.
        experiment: String,
        /// Cell label (the stratum).
        cell: String,
        /// Wave index, 0-based.
        wave: u64,
        /// Trials dispatched so far (all waves up to and including this).
        trials: u64,
        /// Trials whose outcome the classifier counted (failed trials are
        /// excluded from the rate).
        classified: u64,
        /// Classified trials counted as successes.
        successes: u64,
        /// Wilson-score interval lower bound on the success rate.
        ci_lo: f64,
        /// Wilson-score interval upper bound.
        ci_hi: f64,
        /// Interval width (`ci_hi - ci_lo`).
        width: f64,
        /// Whether the rule stopped the cell after this wave.
        stopped: bool,
    },
    /// An inference batch was served by a replica (serving sessions emit
    /// one per batch tick, successful or tripped).
    BatchServed {
        /// Serving session label.
        session: String,
        /// Batch sequence number within the session.
        batch: u64,
        /// Requests in the batch.
        size: u64,
        /// Replica that executed (or tripped on) the batch.
        replica: u64,
        /// Whether an activation guard tripped — a tripped batch is
        /// requeued, so its requests reappear in a later `BatchServed`.
        tripped: bool,
        /// Batch wall-clock duration.
        duration_ns: u64,
    },
    /// A runtime activation-envelope guard tripped: the replica observed
    /// an out-of-range or NaN activation and was quarantined.
    GuardTrip {
        /// Serving session label.
        session: String,
        /// Replica quarantined.
        replica: u64,
        /// Engine layer whose output violated its envelope.
        layer: String,
        /// Batch sequence number the trip occurred on.
        batch: u64,
        /// Whether the violation was a NaN (vs a range excursion).
        nan: bool,
    },
    /// A quarantined replica went through checkpoint reload and a canary
    /// batch (the quarantine-reload failover path).
    ReplicaReload {
        /// Serving session label.
        session: String,
        /// Replica reloaded.
        replica: u64,
        /// Dataset sections re-read from the checkpoint.
        datasets: u64,
        /// Sections whose stored bytes needed ECC repair.
        corrected: u64,
        /// Sections beyond repair, substituted with zeros.
        zero_filled: u64,
        /// Whether the canary batch passed and the replica rejoined the
        /// healthy pool (false: the replica is dead).
        readmitted: bool,
        /// Reload + canary wall-clock duration.
        duration_ns: u64,
    },
    /// A serving session finished — the `CampaignEnd`-style summary for
    /// fleet runs, so serving telemetry aggregates like campaigns do.
    ServeEnd {
        /// Serving session label.
        session: String,
        /// Requests answered.
        requests: u64,
        /// Batches executed (including tripped ones).
        batches: u64,
        /// Guard trips.
        guard_trips: u64,
        /// Quarantine-reloads performed.
        reloads: u64,
        /// Requests that were re-served by a healthy replica after a trip.
        reserved: u64,
        /// Session wall-clock duration.
        duration_ns: u64,
    },
    /// A trial completed (or was served from the manifest, `cached: true`).
    TrialEnd {
        /// Experiment name.
        experiment: String,
        /// Cell label.
        cell: String,
        /// Trial index.
        trial: u64,
        /// The trial's `combo_seed`.
        seed: u64,
        /// Outcome status.
        status: String,
        /// Trial duration (recorded duration for manifest hits).
        duration_ns: u64,
        /// Injections that changed a value.
        injections: u64,
        /// Redrawn injection attempts.
        nan_redraws: u64,
        /// Probability-gate skips.
        skipped: u64,
        /// Whether the result came from the manifest.
        cached: bool,
    },
}

/// A line-buffered JSONL event sink. Each emit writes one line and
/// flushes, so the stream is complete up to the last event even if the
/// process dies. All writes go through one mutex; contention is trivial
/// next to trial cost (see the `telemetry` benchmark).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Append to (creating if needed) a JSONL file, creating parent
    /// directories.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink::to_writer(Box::new(io::BufWriter::new(file))))
    }

    /// Wrap any writer (tests use a shared in-memory buffer).
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlSink { out: Mutex::new(out) }
    }

    /// Emit one event as one flushed JSONL line. I/O errors are reported
    /// to stderr rather than propagated: telemetry must never abort a
    /// campaign mid-trial.
    pub fn emit(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("events always serialize");
        let mut out = self.out.lock();
        if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
            eprintln!("telemetry: failed to write event; continuing");
        }
    }
}

/// Per-experiment roll-up held by the aggregator.
#[derive(Debug, Clone, Default)]
pub struct ExperimentStats {
    /// Trials executed this run.
    pub run: u64,
    /// Trials served from the manifest.
    pub cached: u64,
    /// Trials (executed or cached) whose status is [`FAILED_STATUS`].
    pub failed: u64,
    /// Outcome status histogram.
    pub outcomes: BTreeMap<String, u64>,
    latencies_ns: Vec<u64>,
}

impl ExperimentStats {
    /// Nearest-rank percentile of executed-trial latency, in nanoseconds.
    pub fn latency_percentile_ns(&self, p: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// In-memory aggregation of trial results, rendered once at campaign end:
/// per-experiment trial counts, an outcome histogram, and p50/p95 trial
/// latency.
#[derive(Default)]
pub struct Aggregator {
    stats: Mutex<BTreeMap<String, ExperimentStats>>,
}

impl Aggregator {
    /// A fresh, empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Fold in one trial.
    pub fn record(&self, experiment: &str, status: &str, duration_ns: u64, cached: bool) {
        let mut stats = self.stats.lock();
        let e = stats.entry(experiment.to_string()).or_default();
        *e.outcomes.entry(status.to_string()).or_insert(0) += 1;
        if status == FAILED_STATUS {
            e.failed += 1;
        }
        if cached {
            e.cached += 1;
        } else {
            e.run += 1;
            e.latencies_ns.push(duration_ns);
        }
    }

    /// `(run, cached)` totals across all experiments.
    pub fn totals(&self) -> (u64, u64) {
        let stats = self.stats.lock();
        stats.values().fold((0, 0), |(r, c), e| (r + e.run, c + e.cached))
    }

    /// Failed-trial total across all experiments (executed and cached).
    pub fn failed_total(&self) -> u64 {
        let stats = self.stats.lock();
        stats.values().map(|e| e.failed).sum()
    }

    /// The end-of-campaign summary table.
    pub fn render(&self) -> String {
        let stats = self.stats.lock();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>5} {:>7} {:>6} {:>10} {:>10}  outcomes\n",
            "experiment", "run", "cached", "failed", "p50", "p95"
        ));
        for (name, e) in stats.iter() {
            let outcomes: Vec<String> =
                e.outcomes.iter().map(|(s, n)| format!("{s}:{n}")).collect();
            out.push_str(&format!(
                "{:<12} {:>5} {:>7} {:>6} {:>10} {:>10}  {}\n",
                name,
                e.run,
                e.cached,
                e.failed,
                fmt_ns(e.latency_percentile_ns(50.0)),
                fmt_ns(e.latency_percentile_ns(95.0)),
                outcomes.join(" ")
            ));
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// `manifest.jsonl` + tag `w1` → `manifest-w1.jsonl`, next to the canonical file.
fn shard_sibling(path: &Path, tag: &str) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("manifest");
    let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
    path.with_file_name(format!("{stem}-{tag}.{ext}"))
}

/// FNV-1a digest of a configuration string, hex-encoded. Stable across
/// runs, so manifest records can be checked against the configuration
/// they were produced under.
pub fn digest64(text: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

/// The append-only completed-trial store behind campaign resume.
///
/// One JSONL file per experiment (`results/<experiment>/manifest.jsonl`).
/// Opening loads every parseable line into a seed-keyed map; a torn final
/// line (the process died mid-write) is skipped, so the file never needs
/// repair. Each completed trial is appended and flushed immediately.
///
/// # Multi-process sharding
///
/// N worker processes sharing a results directory each open the manifest
/// with [`Manifest::open_sharded`], passing a worker-unique shard tag.
/// Every worker *reads* the union of the canonical file and all shard
/// files (`manifest-<tag>.jsonl` siblings), but *appends* only to its own
/// shard file — so concurrent workers never interleave writes within one
/// file, and a `kill -9` can tear at most the final line of the dead
/// worker's shard. [`Manifest::reload`] rescans the union, which is how a
/// worker observes waves completed by its peers. Records are keyed by
/// `combo_seed`; because a trial's outcome is a deterministic function of
/// its seed, the same seed recorded by two racing workers carries the
/// same outcome and the merge order cannot change results.
pub struct Manifest {
    completed: Mutex<HashMap<u64, TrialRecord>>,
    writer: Mutex<io::BufWriter<std::fs::File>>,
    path: PathBuf,
    write_path: PathBuf,
}

impl Manifest {
    /// Open (creating if needed) the manifest at `path`, loading all
    /// previously completed trials — including any recorded in shard
    /// files left by sharded workers. Appends go to `path` itself.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_inner(path.as_ref(), None)
    }

    /// Open the manifest for one worker of a sharded campaign: reads the
    /// union of `path` and every sibling shard, appends to this worker's
    /// own `manifest-<shard>.jsonl`. The tag must be filename-safe
    /// (letters, digits, `-`, `_`, `.`).
    pub fn open_sharded(path: impl AsRef<Path>, shard: &str) -> io::Result<Self> {
        assert!(
            !shard.is_empty()
                && shard.chars().all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
            "shard tag {shard:?} is not filename-safe"
        );
        Self::open_inner(path.as_ref(), Some(shard))
    }

    fn open_inner(path: &Path, shard: Option<&str>) -> io::Result<Self> {
        let path = path.to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let write_path = match shard {
            Some(tag) => shard_sibling(&path, tag),
            None => path.clone(),
        };
        let file = std::fs::OpenOptions::new().create(true).append(true).open(&write_path)?;
        let manifest = Manifest {
            completed: Mutex::new(HashMap::new()),
            writer: Mutex::new(io::BufWriter::new(file)),
            path,
            write_path,
        };
        manifest.reload()?;
        Ok(manifest)
    }

    /// Every file contributing records: the canonical manifest plus all
    /// `manifest-<tag>.jsonl` shard siblings, canonical first and shards
    /// in name order (so the merge order is stable across processes).
    fn source_files(&self) -> Vec<PathBuf> {
        let mut sources = vec![self.path.clone()];
        let (Some(dir), Some(stem), Some(ext)) = (
            self.path.parent(),
            self.path.file_stem().and_then(|s| s.to_str()),
            self.path.extension().and_then(|s| s.to_str()),
        ) else {
            return sources;
        };
        let mut shards: Vec<PathBuf> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                        n.starts_with(&format!("{stem}-")) && n.ends_with(&format!(".{ext}"))
                    })
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        shards.sort();
        sources.extend(shards);
        sources
    }

    /// Rescan the canonical file and every shard sibling, replacing the
    /// in-memory record map with the merged union. Returns the number of
    /// records on file. Workers of a sharded campaign call this to pick up
    /// trials their peers completed; everything this instance recorded is
    /// already flushed, so a rescan never loses local records.
    pub fn reload(&self) -> io::Result<usize> {
        let mut completed = HashMap::new();
        for source in self.source_files() {
            let Ok(file) = std::fs::File::open(&source) else { continue };
            for line in io::BufReader::new(file).lines() {
                let line = line?;
                match serde_json::from_str::<TrialRecord>(&line) {
                    Ok(rec) => {
                        completed.insert(rec.seed, rec);
                    }
                    Err(_) => {
                        // A torn write from a crashed run; that trial
                        // simply re-executes.
                    }
                }
            }
        }
        let count = completed.len();
        *self.completed.lock() = completed;
        Ok(count)
    }

    /// Where this manifest lives (the canonical path; sharded instances
    /// append to a sibling — see [`Manifest::write_path`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The file this instance appends records to.
    pub fn write_path(&self) -> &Path {
        &self.write_path
    }

    /// Completed trials on record.
    pub fn completed_count(&self) -> usize {
        self.completed.lock().len()
    }

    /// The recorded trial for `seed`, if it completed under the same
    /// configuration.
    pub fn lookup(&self, seed: u64, config_digest: &str) -> Option<TrialRecord> {
        self.completed.lock().get(&seed).filter(|r| r.config_digest == config_digest).cloned()
    }

    /// Append one completed trial and flush it to disk.
    pub fn record(&self, rec: TrialRecord) -> io::Result<()> {
        let line = serde_json::to_string(&rec).expect("records always serialize");
        {
            let mut w = self.writer.lock();
            writeln!(w, "{line}")?;
            w.flush()?;
        }
        self.completed.lock().insert(rec.seed, rec);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    struct TestDir(PathBuf);
    impl TestDir {
        fn new(tag: &str) -> Self {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("sefi_tel_{tag}_{}_{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create test dir");
            TestDir(path)
        }
        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn outcome(acc: f64) -> TrialOutcome {
        TrialOutcome::ok()
            .with_accuracy(acc)
            .with_curve(vec![0.25, acc])
            .with_metric("repaired", 3.0)
            .with_counters(10, 2, 1)
    }

    fn record(seed: u64, acc: f64) -> TrialRecord {
        TrialRecord {
            experiment: "nev".to_string(),
            cell: "nev-64-10".to_string(),
            framework: "chainer".to_string(),
            model: "alexnet".to_string(),
            trial: seed % 7,
            seed,
            config_digest: digest64("budget"),
            duration_ns: 1234,
            outcome: outcome(acc),
        }
    }

    #[test]
    fn trial_record_roundtrips_exactly_through_json() {
        let rec = record(42, 0.671_234_567_890_123_4);
        let json = serde_json::to_string(&rec).unwrap();
        let back: TrialRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.outcome.final_accuracy, rec.outcome.final_accuracy);
        assert_eq!(back.outcome.metric("repaired"), Some(3.0));
    }

    #[test]
    fn manifest_persists_and_resumes_across_reopen() {
        let dir = TestDir::new("manifest");
        let path = dir.file("manifest.jsonl");
        let digest = digest64("budget");
        {
            let m = Manifest::open(&path).unwrap();
            m.record(record(1, 0.5)).unwrap();
            m.record(record(2, 0.75)).unwrap();
        }
        let m = Manifest::open(&path).unwrap();
        assert_eq!(m.completed_count(), 2);
        let hit = m.lookup(1, &digest).unwrap();
        assert_eq!(hit.outcome.final_accuracy, Some(0.5));
        assert!(m.lookup(3, &digest).is_none());
        // A record from a different configuration is not a hit.
        assert!(m.lookup(1, &digest64("other")).is_none());
        // Appending after reopen keeps earlier records.
        m.record(record(3, 0.9)).unwrap();
        let m2 = Manifest::open(&path).unwrap();
        assert_eq!(m2.completed_count(), 3);
    }

    #[test]
    fn manifest_tolerates_a_torn_final_line() {
        let dir = TestDir::new("torn");
        let path = dir.file("manifest.jsonl");
        {
            let m = Manifest::open(&path).unwrap();
            m.record(record(7, 0.5)).unwrap();
        }
        // Simulate a crash mid-write of the next record.
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{\"experiment\":\"nev\",\"cell\":\"nev-6");
        std::fs::write(&path, contents).unwrap();
        let m = Manifest::open(&path).unwrap();
        assert_eq!(m.completed_count(), 1);
        assert!(m.lookup(7, &digest64("budget")).is_some());
    }

    #[test]
    fn sink_emits_one_parseable_line_per_event() {
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let sink = JsonlSink::to_writer(Box::new(buf.clone()));
        sink.emit(&Event::PhaseStart { phase: "fig2".to_string() });
        sink.emit(&Event::TrialEnd {
            experiment: "fig2".to_string(),
            cell: "fig2-sign only [63,63]".to_string(),
            trial: 4,
            seed: 99,
            status: "ok".to_string(),
            duration_ns: 5,
            injections: 1000,
            nan_redraws: 12,
            skipped: 0,
            cached: false,
        });
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: Event = serde_json::from_str(lines[1]).unwrap();
        match back {
            Event::TrialEnd { trial, seed, nan_redraws, cached, .. } => {
                assert_eq!((trial, seed, nan_redraws, cached), (4, 99, 12, false));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn aggregator_histogram_and_percentiles() {
        let agg = Aggregator::new();
        for i in 1..=100u64 {
            agg.record("nev", "ok", i * 1_000_000, false);
        }
        agg.record("nev", "collapsed", 1, true);
        let (run, cached) = agg.totals();
        assert_eq!((run, cached), (100, 1));
        let stats = agg.stats.lock();
        let e = &stats["nev"];
        assert_eq!(e.outcomes["ok"], 100);
        assert_eq!(e.outcomes["collapsed"], 1);
        assert_eq!(e.latency_percentile_ns(50.0), 50_000_000);
        assert_eq!(e.latency_percentile_ns(95.0), 95_000_000);
        drop(stats);
        let rendered = agg.render();
        assert!(rendered.contains("nev"));
        assert!(rendered.contains("ok:100"));
        assert!(rendered.contains("50.00ms"));
    }

    #[test]
    fn digests_are_stable_and_distinct() {
        assert_eq!(digest64("smoke"), digest64("smoke"));
        assert_ne!(digest64("smoke"), digest64("paper"));
        assert_eq!(digest64("smoke").len(), 16);
    }

    #[test]
    fn failed_outcomes_roundtrip_and_feed_the_aggregator() {
        let o = TrialOutcome::failed("panic: corruption succeeds");
        assert!(o.is_failed());
        assert_eq!(o.status, FAILED_STATUS);
        let json = serde_json::to_string(&o).unwrap();
        let back: TrialOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
        assert_eq!(back.failure.as_deref(), Some("panic: corruption succeeds"));

        let agg = Aggregator::new();
        agg.record("nev", "ok", 10, false);
        agg.record("nev", FAILED_STATUS, 10, false);
        agg.record("nev", FAILED_STATUS, 10, true);
        assert_eq!(agg.failed_total(), 2);
        let rendered = agg.render();
        assert!(rendered.contains("failed"));
        assert!(rendered.contains("failed:2"));
    }

    #[test]
    fn pre_failure_schema_records_still_parse() {
        // A manifest line written before `failure` existed: the field is
        // absent entirely, and must deserialize as None.
        let old = r#"{"status":"ok","collapsed":false,"final_accuracy":0.5,"curve":[],"metrics":[],"injections":1,"nan_redraws":0,"skipped":0,"payload":null}"#;
        let o: TrialOutcome = serde_json::from_str(old).unwrap();
        assert_eq!(o.failure, None);
        assert!(!o.is_failed());
        assert_eq!(o.final_accuracy, Some(0.5));
    }

    #[test]
    fn trial_failed_event_roundtrips() {
        let e = Event::TrialFailed {
            experiment: "fig2".to_string(),
            cell: "fig2-full value [0,63]".to_string(),
            trial: 3,
            seed: 77,
            reason: "panic: corruption succeeds at exp_bitranges.rs:65".to_string(),
            duration_ns: 9,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn non_finite_outcomes_become_recorded_failures_not_panics() {
        // Regression: these builders used to assert!-panic, which at
        // campaign scale killed the worker process instead of recording
        // one failed trial.
        let o = TrialOutcome::ok().with_accuracy(f64::NAN);
        assert!(o.is_failed());
        assert_eq!(o.final_accuracy, None);
        assert!(o.failure.as_deref().unwrap().contains("final_accuracy"));
        // The failed outcome still round-trips through JSON (nothing
        // non-finite was stored).
        let back: TrialOutcome = serde_json::from_str(&serde_json::to_string(&o).unwrap()).unwrap();
        assert_eq!(back, o);

        let o = TrialOutcome::ok().with_curve(vec![0.5, f64::INFINITY]);
        assert!(o.is_failed() && o.curve.is_empty());
        let o = TrialOutcome::ok().with_metric("dev", f64::NEG_INFINITY);
        assert!(o.is_failed() && o.metrics.is_empty());
        assert!(o.failure.as_deref().unwrap().contains("dev"));

        // A later verdict never resurrects a failed outcome's status.
        let o = TrialOutcome::ok().with_accuracy(f64::NAN).with_collapsed(true);
        assert!(o.is_failed());
        assert_eq!(o.status, FAILED_STATUS);

        // Finite values still record normally.
        let o = TrialOutcome::ok().with_accuracy(0.5).with_metric("dev", 1.0);
        assert!(!o.is_failed());
        assert_eq!(o.final_accuracy, Some(0.5));
    }

    #[test]
    fn sharded_manifests_merge_reload_and_stay_write_isolated() {
        let dir = TestDir::new("shard");
        let path = dir.file("manifest.jsonl");
        let digest = digest64("budget");

        let a = Manifest::open_sharded(&path, "w1").unwrap();
        let b = Manifest::open_sharded(&path, "w2").unwrap();
        a.record(record(1, 0.25)).unwrap();
        b.record(record(2, 0.5)).unwrap();

        // Each worker wrote only to its own shard file.
        assert!(a.write_path().ends_with("manifest-w1.jsonl"));
        assert!(b.write_path().ends_with("manifest-w2.jsonl"));
        assert!(!path.exists() || std::fs::read_to_string(&path).unwrap().is_empty());

        // Before reload, a worker sees only what it loaded at open plus
        // its own records; after reload it sees the union.
        assert!(a.lookup(2, &digest).is_none());
        assert_eq!(a.reload().unwrap(), 2);
        assert!(a.lookup(2, &digest).is_some());
        assert!(a.lookup(1, &digest).is_some(), "reload keeps own flushed records");

        // A plain (unsharded) open merges the shards too — a 1-process
        // resume after a sharded campaign serves every recorded trial.
        let plain = Manifest::open(&path).unwrap();
        assert_eq!(plain.completed_count(), 2);
        // And a third sharded worker joining late sees everything.
        let c = Manifest::open_sharded(&path, "w3").unwrap();
        assert_eq!(c.completed_count(), 2);
    }

    #[test]
    fn sharded_manifest_tolerates_a_torn_shard_line() {
        let dir = TestDir::new("shardtorn");
        let path = dir.file("manifest.jsonl");
        {
            let m = Manifest::open_sharded(&path, "dead").unwrap();
            m.record(record(7, 0.5)).unwrap();
        }
        // The dead worker's shard ends mid-record (kill -9 mid-write).
        let shard = dir.file("manifest-dead.jsonl");
        let mut contents = std::fs::read_to_string(&shard).unwrap();
        contents.push_str("{\"experiment\":\"nev\",\"cell\":\"nev-6");
        std::fs::write(&shard, contents).unwrap();
        let m = Manifest::open_sharded(&path, "alive").unwrap();
        assert_eq!(m.completed_count(), 1);
        assert!(m.lookup(7, &digest64("budget")).is_some());
    }

    #[test]
    fn wave_end_event_roundtrips() {
        let e = Event::WaveEnd {
            experiment: "fig2".to_string(),
            cell: "fig2-sign only [63,63]".to_string(),
            wave: 2,
            trials: 6,
            classified: 5,
            successes: 1,
            ci_lo: 0.035_746,
            ci_hi: 0.624_108,
            width: 0.588_362,
            stopped: true,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn serving_events_roundtrip() {
        let events = [
            Event::BatchServed {
                session: "serve-ci".to_string(),
                batch: 17,
                size: 8,
                replica: 1,
                tripped: false,
                duration_ns: 41_000,
            },
            Event::GuardTrip {
                session: "serve-ci".to_string(),
                replica: 0,
                layer: "conv2".to_string(),
                batch: 18,
                nan: false,
            },
            Event::ReplicaReload {
                session: "serve-ci".to_string(),
                replica: 0,
                datasets: 2,
                corrected: 1,
                zero_filled: 0,
                readmitted: true,
                duration_ns: 900_000,
            },
            Event::ServeEnd {
                session: "serve-ci".to_string(),
                requests: 96,
                batches: 13,
                guard_trips: 1,
                reloads: 1,
                reserved: 8,
                duration_ns: 5_000_000,
            },
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }
}
