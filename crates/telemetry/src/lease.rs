//! File-based work leases for multi-process campaign sharding.
//!
//! Worker processes coordinating over a shared filesystem claim units of
//! work — in practice `(cell, wave)` pairs of an adaptive campaign — by
//! atomically creating a lease file with `O_EXCL` next to the experiment's
//! manifest. A lease is *advisory and safety-free*: trials are
//! deterministic functions of their seed and the manifest merge dedups by
//! seed, so even a duplicated claim (two workers racing a stale-lease
//! break) only costs duplicated compute, never a wrong result. Leases
//! exist purely to keep workers off each other's waves.
//!
//! Liveness across `kill -9`: a held lease is refreshed (mtime heartbeat)
//! by a background thread every quarter TTL. A lease whose mtime is older
//! than the TTL belonged to a dead worker; a claimant breaks it by
//! *renaming* it to a unique tombstone first — the rename is atomic, so of
//! several workers spotting the same stale lease exactly one wins the
//! break and proceeds to re-create the lease file.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// A directory of lease files shared by the workers of one campaign.
#[derive(Debug, Clone)]
pub struct LeaseDir {
    dir: PathBuf,
    owner: String,
    ttl: Duration,
}

impl LeaseDir {
    /// Leases live in `dir` (created if needed); `owner` names this worker
    /// in lease-file contents (diagnostics only); a lease whose heartbeat
    /// is older than `ttl` is considered abandoned and may be broken.
    pub fn new(
        dir: impl Into<PathBuf>,
        owner: impl Into<String>,
        ttl: Duration,
    ) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(LeaseDir { dir, owner: owner.into(), ttl })
    }

    /// The directory holding the lease files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lease_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.lease"))
    }

    /// Try to claim the lease named `key` (letters/digits/`-`/`_` only —
    /// callers digest free-form cell labels first). Returns the held lease
    /// on success, `None` if another live worker holds it. A lease whose
    /// mtime heartbeat has expired is broken (atomically, via rename) and
    /// re-claimed.
    pub fn try_claim(&self, key: &str) -> io::Result<Option<Lease>> {
        let path = self.lease_path(key);
        for attempt in 0..2 {
            match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", self.owner);
                    let _ = f.flush();
                    return Ok(Some(Lease::held(path, self.ttl)));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if attempt > 0 || !self.break_if_stale(&path)? {
                        return Ok(None);
                    }
                    // Stale lease broken: one more create attempt. If a
                    // rival won the re-create race we yield to them.
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// If the lease file at `path` has not been heartbeat within the TTL,
    /// break it and return `true`. The break renames to a unique tombstone
    /// before deleting, so concurrent breakers cannot delete a lease that
    /// a rival already re-created.
    fn break_if_stale(&self, path: &Path) -> io::Result<bool> {
        let age = match fs::metadata(path).and_then(|m| m.modified()) {
            Ok(modified) => modified.elapsed().unwrap_or(Duration::ZERO),
            // Vanished between the failed create and the stat: the holder
            // released it; let the caller retry the create.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(true),
            Err(e) => return Err(e),
        };
        if age <= self.ttl {
            return Ok(false);
        }
        static TOMBSTONE: AtomicU64 = AtomicU64::new(0);
        let n = TOMBSTONE.fetch_add(1, Ordering::Relaxed);
        let tomb = path.with_extension(format!("stale.{}.{n}", std::process::id()));
        match fs::rename(path, &tomb) {
            Ok(()) => {
                let _ = fs::remove_file(&tomb);
                Ok(true)
            }
            // Lost the break race (or the holder woke up); not ours.
            Err(_) => Ok(false),
        }
    }
}

/// A held lease. Heartbeats (mtime refreshes) run on a background thread
/// every quarter TTL until the lease is dropped; dropping releases the
/// lease by deleting its file.
pub struct Lease {
    path: PathBuf,
    stop: Option<mpsc::Sender<()>>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl Lease {
    fn held(path: PathBuf, ttl: Duration) -> Self {
        let (stop, stopped) = mpsc::channel::<()>();
        let beat_path = path.clone();
        let interval = (ttl / 4).max(Duration::from_millis(10));
        let heartbeat = std::thread::spawn(move || {
            // recv_timeout doubles as the sleep: a send — or the sender
            // dropping, which surfaces as Disconnected — ends the loop
            // immediately instead of after a full interval.
            while matches!(stopped.recv_timeout(interval), Err(mpsc::RecvTimeoutError::Timeout)) {
                if let Ok(f) = fs::OpenOptions::new().write(true).open(&beat_path) {
                    let _ = f.set_modified(std::time::SystemTime::now());
                } else {
                    break; // lease file gone (broken as stale) — stop beating
                }
            }
        });
        Lease { path, stop: Some(stop), heartbeat: Some(heartbeat) }
    }

    /// Where the lease file lives (tests inspect it).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        drop(self.stop.take());
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sefi_lease_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn claim_is_exclusive_and_release_reopens() {
        let dir = scratch("excl");
        let a = LeaseDir::new(&dir, "a", Duration::from_secs(60)).unwrap();
        let b = LeaseDir::new(&dir, "b", Duration::from_secs(60)).unwrap();
        let held = a.try_claim("cell0-w0").unwrap().expect("first claim succeeds");
        assert!(b.try_claim("cell0-w0").unwrap().is_none(), "live lease must exclude rivals");
        assert!(b.try_claim("cell0-w1").unwrap().is_some(), "other keys are independent");
        drop(held);
        assert!(b.try_claim("cell0-w0").unwrap().is_some(), "released lease is claimable");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lease_is_broken_after_ttl() {
        let dir = scratch("stale");
        // A dead worker's lease: the file exists but nothing heartbeats it.
        fs::write(dir.join("cell1-w0.lease"), "dead-worker\n").unwrap();
        let fast = LeaseDir::new(&dir, "alive", Duration::from_millis(30)).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert!(fast.try_claim("cell1-w0").unwrap().is_some(), "expired lease must be broken");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_keeps_a_held_lease_alive_past_its_ttl() {
        let dir = scratch("beat");
        let ttl = Duration::from_millis(80);
        let holder = LeaseDir::new(&dir, "holder", ttl).unwrap();
        let rival = LeaseDir::new(&dir, "rival", ttl).unwrap();
        let held = holder.try_claim("cell2-w0").unwrap().expect("claim");
        // Hold well past the TTL: the heartbeat must keep refreshing mtime
        // so the rival never sees it as stale.
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(40));
            assert!(
                rival.try_claim("cell2-w0").unwrap().is_none(),
                "heartbeat lapsed; live lease was stolen"
            );
        }
        drop(held);
        assert!(rival.try_claim("cell2-w0").unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
