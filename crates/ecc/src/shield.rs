//! Whole-checkpoint protection: per-dataset parity sidecars.

use sefi_hdf5::hamming::{decode, encode, DecodeResult};
use sefi_hdf5::{Dataset, Dtype, H5File};
use std::collections::BTreeMap;

/// Parity sidecar for a checkpoint: one parity byte per 64-bit word of
/// each dataset's raw byte buffer (short trailing words are zero-padded).
#[derive(Debug, Clone, PartialEq)]
pub struct EccShield {
    parities: BTreeMap<String, Vec<u8>>,
}

/// One per-word repair/detection event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordEvent {
    /// Protected dataset path.
    pub location: String,
    /// Word index within the dataset's byte buffer.
    pub word_index: usize,
    /// True if the word was repaired, false if uncorrectable.
    pub corrected: bool,
}

/// Scrub outcome.
#[derive(Debug, Clone, Default)]
pub struct EccReport {
    /// Words examined.
    pub words_checked: u64,
    /// Per-word events (clean words are not reported).
    pub events: Vec<WordEvent>,
}

impl EccReport {
    /// Number of repaired words.
    pub fn corrected(&self) -> usize {
        self.events.iter().filter(|e| e.corrected).count()
    }

    /// Number of uncorrectable (detected) words.
    pub fn uncorrectable(&self) -> usize {
        self.events.iter().filter(|e| !e.corrected).count()
    }

    /// True when everything decoded clean.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }
}

impl EccShield {
    /// Compute parities over every dataset of `file`.
    pub fn protect(file: &H5File) -> Self {
        let mut parities = BTreeMap::new();
        for path in file.dataset_paths() {
            let ds = file.dataset(&path).expect("enumerated path");
            parities.insert(path, ds.bytes().chunks(8).map(word_of).map(encode).collect());
        }
        EccShield { parities }
    }

    /// Verify `file` against the sidecar, repairing single-bit errors in
    /// place. Structure must match the protected file (same datasets, same
    /// sizes); mismatches are errors, not events.
    pub fn verify_and_repair(&self, file: &mut H5File) -> Result<EccReport, String> {
        let paths = file.dataset_paths();
        if paths.len() != self.parities.len()
            || paths.iter().any(|p| !self.parities.contains_key(p))
        {
            return Err("checkpoint structure differs from the protected file".to_string());
        }
        let mut report = EccReport::default();
        for path in paths {
            let parities = &self.parities[&path];
            let ds = file.dataset_mut(&path).expect("enumerated path");
            let n_words = ds.bytes().len().div_ceil(8);
            if n_words != parities.len() {
                return Err(format!("dataset {path:?} changed size"));
            }
            let mut repaired_bytes: Option<Vec<u8>> = None;
            for (w, &parity) in parities.iter().enumerate() {
                report.words_checked += 1;
                let bytes = repaired_bytes.as_deref().unwrap_or_else(|| ds.bytes());
                let chunk_end = ((w + 1) * 8).min(bytes.len());
                let word = word_of(&bytes[w * 8..chunk_end]);
                match decode(word, parity) {
                    DecodeResult::Clean(_) => {}
                    DecodeResult::Corrected { data, .. } => {
                        let buf = repaired_bytes.get_or_insert_with(|| ds.bytes().to_vec());
                        let le = data.to_le_bytes();
                        let end = ((w + 1) * 8).min(buf.len());
                        buf[w * 8..end].copy_from_slice(&le[..end - w * 8]);
                        report.events.push(WordEvent {
                            location: path.clone(),
                            word_index: w,
                            corrected: true,
                        });
                    }
                    DecodeResult::DoubleError(_) => {
                        report.events.push(WordEvent {
                            location: path.clone(),
                            word_index: w,
                            corrected: false,
                        });
                    }
                }
            }
            if let Some(buf) = repaired_bytes {
                overwrite_dataset(ds, &buf);
            }
        }
        Ok(report)
    }

    /// Serialize the sidecar itself as a checkpoint-format file (parity
    /// arrays under `ecc/<original path>`), so it can live next to the
    /// checkpoint it protects.
    pub fn to_file(&self) -> H5File {
        let mut f = H5File::new();
        for (path, parities) in &self.parities {
            let values: Vec<i64> = parities.iter().map(|&b| b as i64).collect();
            f.create_dataset(
                &format!("ecc/{path}"),
                Dataset::from_i64(&values, &[values.len()], Dtype::U8)
                    .expect("shape is consistent"),
            )
            .expect("paths are unique");
        }
        f
    }

    /// Load a sidecar previously produced by [`EccShield::to_file`].
    pub fn from_file(file: &H5File) -> Result<Self, String> {
        let mut parities = BTreeMap::new();
        for path in file.dataset_paths() {
            let stripped = path
                .strip_prefix("ecc/")
                .ok_or_else(|| format!("unexpected sidecar path {path:?}"))?;
            let ds = file.dataset(&path).map_err(|e| e.to_string())?;
            let bytes: Vec<u8> =
                (0..ds.len()).map(|i| ds.get_i64(i).expect("in bounds") as u8).collect();
            parities.insert(stripped.to_string(), bytes);
        }
        Ok(EccShield { parities })
    }
}

fn word_of(chunk: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..chunk.len()].copy_from_slice(chunk);
    u64::from_le_bytes(buf)
}

fn overwrite_dataset(ds: &mut Dataset, bytes: &[u8]) {
    // Rewrite the dataset's buffer element-wise through the bit API (the
    // container does not expose raw mutable bytes).
    let w = ds.dtype().size();
    for i in 0..ds.len() {
        let mut buf = [0u8; 8];
        buf[..w].copy_from_slice(&bytes[i * w..(i + 1) * w]);
        ds.set_bits(i, u64::from_le_bytes(buf)).expect("in bounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sefi_core::{Corrupter, CorrupterConfig};
    use sefi_float::Precision;

    fn checkpoint() -> H5File {
        let mut f = H5File::new();
        let values: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.21).cos()).collect();
        f.create_dataset("m/w", Dataset::from_f32(&values, &[64], Dtype::F64).unwrap()).unwrap();
        f.create_dataset("m/b", Dataset::from_f32(&[0.5; 7], &[7], Dtype::F32).unwrap()).unwrap();
        f.create_dataset("m/epoch", Dataset::scalar_i64(20)).unwrap();
        f
    }

    #[test]
    fn clean_file_verifies_clean() {
        let f = checkpoint();
        let shield = EccShield::protect(&f);
        let mut g = f.clone();
        let report = shield.verify_and_repair(&mut g).unwrap();
        assert!(report.is_clean());
        assert_eq!(g, f);
    }

    #[test]
    fn single_bit_flips_are_fully_repaired() {
        // One flip per 64-bit word (an f64 entry = one code word): every
        // word has at most one error, so SEC-DED repairs everything.
        let f = checkpoint();
        let shield = EccShield::protect(&f);
        let mut g = f.clone();
        {
            let ds = g.dataset_mut("m/w").unwrap();
            for (entry, bit) in [(0usize, 62u32), (7, 0), (31, 51), (63, 33)] {
                let bits = ds.get_bits(entry).unwrap();
                ds.set_bits(entry, bits ^ (1u64 << bit)).unwrap();
            }
        }
        assert_ne!(g, f);
        let report = shield.verify_and_repair(&mut g).unwrap();
        assert_eq!(report.corrected(), 4);
        assert_eq!(report.uncorrectable(), 0);
        assert_eq!(g, f, "repair must restore the original bytes");
    }

    #[test]
    fn corrupter_injections_are_repaired_or_flagged_never_missed() {
        // Random corrupter flips may collide in one word (then SEC-DED can
        // only detect); the invariant is no silent acceptance: after a
        // repair pass, any remaining difference from the original is
        // exactly the set of flagged-uncorrectable words.
        let f = checkpoint();
        let shield = EccShield::protect(&f);
        let mut g = f.clone();
        let mut cfg = CorrupterConfig::bit_flips_full_range(5, Precision::Fp64, 3);
        cfg.locations =
            sefi_core::LocationSelection::Listed(vec!["m/w".to_string(), "m/epoch".to_string()]);
        Corrupter::new(cfg).unwrap().corrupt(&mut g).unwrap();
        let report = shield.verify_and_repair(&mut g).unwrap();
        assert!(report.corrected() + report.uncorrectable() >= 1);
        if report.uncorrectable() == 0 {
            assert_eq!(g, f);
        } else {
            // Differences confined to flagged words.
            for p in g.dataset_paths() {
                let (a, b) = (g.dataset(&p).unwrap(), f.dataset(&p).unwrap());
                let word_bytes = 8 / a.dtype().size().min(8);
                for i in 0..a.len() {
                    if a.get_bits(i).unwrap() != b.get_bits(i).unwrap() {
                        let word = i / word_bytes.max(1);
                        assert!(
                            report
                                .events
                                .iter()
                                .any(|e| !e.corrected && e.location == p && e.word_index == word),
                            "unflagged difference at {p}[{i}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multibit_mask_in_one_word_defeats_correction() {
        // The paper's Table VI motivation: multi-bit DRAM errors beat
        // SEC-DED. A 4-bit mask in one word must be flagged or (for odd
        // weights) miscorrected — never silently clean, and never equal to
        // the original data.
        let f = checkpoint();
        let shield = EccShield::protect(&f);
        let mut g = f.clone();
        {
            let ds = g.dataset_mut("m/w").unwrap();
            let bits = ds.get_bits(10).unwrap();
            ds.set_bits(10, bits ^ 0b01101010 << 20).unwrap(); // paper mask
        }
        let report = shield.verify_and_repair(&mut g).unwrap();
        assert_eq!(report.uncorrectable(), 1, "even-weight mask must be detected");
        assert_ne!(
            g.dataset("m/w").unwrap().get_bits(10).unwrap(),
            f.dataset("m/w").unwrap().get_bits(10).unwrap()
        );
    }

    #[test]
    fn sidecar_roundtrips_through_its_file_form() {
        let f = checkpoint();
        let shield = EccShield::protect(&f);
        let sidecar = shield.to_file();
        let back = EccShield::from_file(&sidecar).unwrap();
        assert_eq!(back, shield);
    }

    #[test]
    fn structural_mismatch_is_an_error() {
        let f = checkpoint();
        let shield = EccShield::protect(&f);
        let mut other = H5File::new();
        other.create_dataset("different", Dataset::zeros(&[4], Dtype::F32)).unwrap();
        assert!(shield.verify_and_repair(&mut other).is_err());
    }
}
