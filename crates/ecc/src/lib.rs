//! SEC-DED error-correcting codes for checkpoint files.
//!
//! The paper closes its multi-bit-mask study (Table VI) by pointing at
//! "more robust error detection and correction systems" and cites SEC-DED
//! literature ([44]–[46]). This crate supplies that layer for checkpoints:
//! an extended Hamming(72,64) code — **S**ingle **E**rror **C**orrect,
//! **D**ouble **E**rror **D**etect, the standard DRAM ECC word format —
//! applied per 64-bit word of every dataset, with the parity bytes stored
//! as a sidecar.
//!
//! Together with the corrupter this closes the loop experimentally
//! (`ext_ecc` binary): single bit-flips (the overwhelmingly common SDC,
//! Table V's subject) are repaired exactly; the paper's 3–6-bit DRAM
//! masks defeat correction, and most are *detected* as uncorrectable —
//! matching why the paper says multi-bit errors "must be accounted for".

#![deny(missing_docs)]

mod shield;

// The Hamming(72,64) primitive lives in `sefi_hdf5::hamming` so the v2
// container can consult parity sidecars during loads without a dependency
// cycle (this crate depends on sefi-hdf5). Re-exported here so existing
// callers keep their import paths.
pub use sefi_hdf5::hamming::{decode, encode, DecodeResult};
pub use shield::{EccReport, EccShield, WordEvent};
