//! Property tests for the SEC-DED code.

use proptest::prelude::*;
use sefi_ecc::{decode, encode, DecodeResult};

proptest! {
    #[test]
    fn clean_words_always_decode_clean(data in any::<u64>()) {
        prop_assert_eq!(decode(data, encode(data)), DecodeResult::Clean(data));
    }

    #[test]
    fn any_single_data_flip_is_corrected_exactly(data in any::<u64>(), bit in 0u32..64) {
        let parity = encode(data);
        let corrupted = data ^ (1u64 << bit);
        match decode(corrupted, parity) {
            DecodeResult::Corrected { data: d, data_bit: true } => prop_assert_eq!(d, data),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    #[test]
    fn any_single_parity_flip_leaves_data_alone(data in any::<u64>(), bit in 0u32..8) {
        let parity = encode(data) ^ (1u8 << bit);
        match decode(data, parity) {
            DecodeResult::Corrected { data: d, data_bit: false } => prop_assert_eq!(d, data),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    #[test]
    fn any_double_data_flip_is_detected(
        data in any::<u64>(),
        a in 0u32..64,
        b in 0u32..64,
    ) {
        prop_assume!(a != b);
        let parity = encode(data);
        let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
        prop_assert_eq!(decode(corrupted, parity), DecodeResult::DoubleError(corrupted));
    }

    #[test]
    fn mixed_data_parity_double_flip_is_not_silently_clean(
        data in any::<u64>(),
        dbit in 0u32..64,
        pbit in 0u32..8,
    ) {
        let parity = encode(data) ^ (1u8 << pbit);
        let corrupted = data ^ (1u64 << dbit);
        // Detected, or miscorrected to some word — SEC-DED's contract
        // only promises detection for double errors within its own
        // coverage; a flip in the overall bit plus a data bit aliases
        // to a single data error. Either way, never Clean.
        if let DecodeResult::Clean(_) = decode(corrupted, parity) {
            return Err(TestCaseError::fail("missed".to_string()));
        }
    }
}
