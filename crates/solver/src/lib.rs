//! Beyond deep learning: checkpoint alteration for a traditional iterative
//! solver (the paper's Section VI-5 research direction).
//!
//! "We argue that checkpoint alteration is applicable to the whole spectrum
//! of scientific codes. Traditional iterative solvers of systems of partial
//! differential equations or particle-interaction codes are well-suited for
//! this technique."
//!
//! This crate implements a 2-D steady-state heat-equation solver (Jacobi
//! iteration on a Dirichlet-boundary grid) that checkpoints its entire
//! state into the same hierarchical container the DL frameworks use —
//! making it corruptible by the same injector with zero changes. Jacobi
//! iteration is *self-correcting*: a perturbed interior value is averaged
//! away geometrically, so most bit-flips heal, while an extreme value
//! floods the grid — exactly the dichotomy the paper found in DL training.

#![deny(missing_docs)]

use sefi_float::NevPolicy;
use sefi_hdf5::{Dataset, Dtype, H5File};

/// A 2-D steady-state heat-diffusion problem with fixed boundary
/// temperatures, solved by Jacobi iteration.
#[derive(Debug, Clone)]
pub struct HeatSolver {
    width: usize,
    height: usize,
    /// Current temperature field, row-major `height × width`.
    grid: Vec<f64>,
    /// Boundary mask: true cells are Dirichlet (never updated).
    fixed: Vec<bool>,
    iteration: u64,
}

/// Result of running the solver for a while.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// Residual fell below the tolerance after this many iterations.
    Converged(u64),
    /// Iteration budget exhausted; last residual attached.
    Unconverged(f64),
    /// The grid computed a NaN or extreme value (the paper's N-EV) —
    /// the solver's analogue of a collapsed training.
    Collapsed(u64),
}

impl HeatSolver {
    /// A `width × height` plate, `left`/`right`/`top`/`bottom` edge
    /// temperatures fixed, interior initialized to their mean.
    pub fn new(width: usize, height: usize, edges: [f64; 4]) -> Self {
        assert!(width >= 3 && height >= 3, "grid must have an interior");
        let [left, right, top, bottom] = edges;
        let mean = (left + right + top + bottom) / 4.0;
        let mut grid = vec![mean; width * height];
        let mut fixed = vec![false; width * height];
        for y in 0..height {
            for x in 0..width {
                let i = y * width + x;
                if x == 0 {
                    grid[i] = left;
                    fixed[i] = true;
                } else if x == width - 1 {
                    grid[i] = right;
                    fixed[i] = true;
                } else if y == 0 {
                    grid[i] = top;
                    fixed[i] = true;
                } else if y == height - 1 {
                    grid[i] = bottom;
                    fixed[i] = true;
                }
            }
        }
        HeatSolver { width, height, grid, fixed, iteration: 0 }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Iterations performed so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// The temperature field.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// One Jacobi sweep; returns the max absolute update (the residual).
    pub fn step(&mut self) -> f64 {
        let w = self.width;
        let mut next = self.grid.clone();
        let mut residual = 0.0f64;
        for y in 1..self.height - 1 {
            for x in 1..w - 1 {
                let i = y * w + x;
                if self.fixed[i] {
                    continue;
                }
                let v = 0.25
                    * (self.grid[i - 1] + self.grid[i + 1] + self.grid[i - w] + self.grid[i + w]);
                residual = residual.max((v - self.grid[i]).abs());
                next[i] = v;
            }
        }
        self.grid = next;
        self.iteration += 1;
        residual
    }

    /// Run until the residual drops below `tol` or `max_iters` sweeps pass.
    /// N-EV values in the grid abort the run (a corrupted checkpoint can
    /// introduce them; the solver mirrors the trainer's collapse check).
    pub fn run(&mut self, tol: f64, max_iters: u64, nev: &NevPolicy) -> SolveOutcome {
        let mut last = f64::INFINITY;
        for _ in 0..max_iters {
            if self.grid.iter().any(|&v| nev.classify_f64(v).is_some()) {
                return SolveOutcome::Collapsed(self.iteration);
            }
            last = self.step();
            if last < tol {
                return SolveOutcome::Converged(self.iteration);
            }
        }
        SolveOutcome::Unconverged(last)
    }

    /// Maximum absolute difference from another solver's field.
    pub fn max_diff(&self, other: &HeatSolver) -> f64 {
        self.grid.iter().zip(&other.grid).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Checkpoint the full solver state into the same container format the
    /// DL frameworks use — and therefore into the injector's reach.
    pub fn checkpoint(&self) -> H5File {
        let mut f = H5File::new();
        f.create_dataset(
            "solver/grid",
            Dataset::from_f32(
                &self.grid.iter().map(|&v| v as f32).collect::<Vec<_>>(),
                &[self.height, self.width],
                Dtype::F64,
            )
            .expect("grid shape is consistent"),
        )
        .expect("fresh file");
        // Store the exact f64 values (from_f32 above narrowed); overwrite
        // element-wise for bit-exactness.
        {
            let ds = f.dataset_mut("solver/grid").expect("just created");
            for (i, &v) in self.grid.iter().enumerate() {
                ds.set_f64(i, v).expect("in bounds");
            }
        }
        f.create_dataset(
            "solver/fixed_mask",
            Dataset::from_i64(
                &self.fixed.iter().map(|&b| b as i64).collect::<Vec<_>>(),
                &[self.height, self.width],
                Dtype::U8,
            )
            .expect("mask shape is consistent"),
        )
        .expect("unique path");
        f.create_dataset("solver/iteration", Dataset::scalar_i64(self.iteration as i64))
            .expect("unique path");
        f
    }

    /// Restore from a checkpoint (possibly corrupted — values are taken as
    /// found; structure must match).
    pub fn restore(&mut self, file: &H5File) -> Result<(), String> {
        let grid = file.dataset("solver/grid").map_err(|e| e.to_string())?;
        if grid.shape() != [self.height, self.width] {
            return Err(format!(
                "grid shape {:?} does not match solver {}x{}",
                grid.shape(),
                self.height,
                self.width
            ));
        }
        let mask = file.dataset("solver/fixed_mask").map_err(|e| e.to_string())?;
        if mask.len() != self.fixed.len() {
            return Err("fixed mask size mismatch".to_string());
        }
        self.grid = grid.to_f64_vec();
        self.fixed = (0..mask.len()).map(|i| mask.get_i64(i).expect("in bounds") != 0).collect();
        self.iteration = file
            .dataset("solver/iteration")
            .and_then(|d| d.get_i64(0))
            .map_err(|e| e.to_string())? as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sefi_core::{Corrupter, CorrupterConfig, LocationSelection};
    use sefi_float::{BitRange, Precision};

    fn solver() -> HeatSolver {
        HeatSolver::new(16, 16, [100.0, 0.0, 50.0, 25.0])
    }

    #[test]
    fn converges_to_a_harmonic_field() {
        let mut s = solver();
        let out = s.run(1e-9, 20_000, &NevPolicy::default());
        assert!(matches!(out, SolveOutcome::Converged(_)), "{out:?}");
        // Harmonic interior: every cell equals its neighbour average.
        let (w, _) = s.dims();
        for y in 1..15 {
            for x in 1..15 {
                let i = y * w + x;
                let avg = 0.25 * (s.grid[i - 1] + s.grid[i + 1] + s.grid[i - w] + s.grid[i + w]);
                assert!((s.grid[i] - avg).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        let mut s = solver();
        for _ in 0..10 {
            s.step();
        }
        let ck = s.checkpoint();
        let mut r = solver();
        r.restore(&ck).unwrap();
        assert_eq!(r.iteration(), 10);
        assert_eq!(r.grid(), s.grid());
        // Continuing both produces identical fields (determinism).
        s.step();
        r.step();
        assert_eq!(r.grid(), s.grid());
    }

    #[test]
    fn mantissa_flips_self_correct() {
        // The paper's expectation for iterative solvers: benign corruption
        // is healed by the iteration itself.
        let mut s = solver();
        s.run(1e-9, 20_000, &NevPolicy::default());
        let reference = s.clone();

        let mut ck = s.checkpoint();
        let mut cfg = CorrupterConfig::bit_flips(20, Precision::Fp64, 77);
        cfg.mode = sefi_core::CorruptionMode::BitRange(BitRange::mantissa_only(Precision::Fp64));
        cfg.locations = LocationSelection::Listed(vec!["solver/grid".to_string()]);
        Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();

        let mut victim = solver();
        victim.restore(&ck).unwrap();
        let out = victim.run(1e-12, 20_000, &NevPolicy::default());
        assert!(matches!(out, SolveOutcome::Converged(_)), "{out:?}");
        // Flips on *interior* cells heal completely; flips that land on the
        // Dirichlet boundary permanently (but slightly) shift the solution.
        // A mantissa flip changes a value by < 1 ulp of its exponent, so
        // the total deviation stays tiny either way.
        assert!(
            victim.max_diff(&reference) < 1e-2,
            "solution did not heal: diff {}",
            victim.max_diff(&reference)
        );
    }

    #[test]
    fn interior_corruption_heals_completely() {
        let mut s = solver();
        s.run(1e-9, 20_000, &NevPolicy::default());
        let reference = s.clone();
        // Perturb an interior cell directly (bypassing the boundary).
        let (w, _) = s.dims();
        s.grid[5 * w + 5] += 37.5;
        let out = s.run(1e-11, 50_000, &NevPolicy::default());
        assert!(matches!(out, SolveOutcome::Converged(_)), "{out:?}");
        assert!(s.max_diff(&reference) < 1e-7, "diff {}", s.max_diff(&reference));
    }

    #[test]
    fn critical_bit_flips_collapse_the_solver() {
        // Keep all temperatures below 2.0 so the biased exponent's MSB is
        // clear and a bit-62 flip multiplies by 2^1024 → extreme value
        // (values ≥ 2 would instead flip *down* to harmless tiny numbers —
        // the same asymmetry the paper observes for DL weights, which live
        // well below 2).
        let mut s = HeatSolver::new(16, 16, [1.5, 0.5, 1.0, 0.25]);
        s.run(1e-9, 20_000, &NevPolicy::default());
        let mut ck = s.checkpoint();
        let mut cfg = CorrupterConfig::bit_flips_full_range(50, Precision::Fp64, 3);
        cfg.mode = sefi_core::CorruptionMode::BitRange(BitRange { first_bit: 62, last_bit: 62 });
        cfg.locations = LocationSelection::Listed(vec!["solver/grid".to_string()]);
        Corrupter::new(cfg).unwrap().corrupt(&mut ck).unwrap();
        let mut victim = HeatSolver::new(16, 16, [1.5, 0.5, 1.0, 0.25]);
        victim.restore(&ck).unwrap();
        let out = victim.run(1e-9, 1000, &NevPolicy::default());
        assert!(matches!(out, SolveOutcome::Collapsed(_)), "{out:?}");
    }

    #[test]
    fn structural_damage_is_rejected() {
        let s = solver();
        let ck = s.checkpoint();
        let mut small = HeatSolver::new(8, 8, [1.0, 2.0, 3.0, 4.0]);
        assert!(small.restore(&ck).is_err());
        assert!(solver().restore(&H5File::new()).is_err());
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn degenerate_grid_rejected() {
        HeatSolver::new(2, 5, [0.0; 4]);
    }
}
