//! Property-based tests for the heat-equation solver substrate.

use proptest::prelude::*;
use sefi_float::NevPolicy;
use sefi_solver::{HeatSolver, SolveOutcome};

fn any_edges() -> impl Strategy<Value = [f64; 4]> {
    prop::array::uniform4(-50.0f64..50.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The discrete maximum principle: interior temperatures stay within
    /// the range spanned by the boundary at every iteration.
    #[test]
    fn maximum_principle_holds(edges in any_edges(), steps in 1u64..200) {
        let mut s = HeatSolver::new(10, 10, edges);
        let lo = edges.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = edges.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for _ in 0..steps {
            s.step();
        }
        for &v in s.grid() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
        }
    }

    /// Residuals are monotone non-increasing for Jacobi on this problem
    /// (diagonally dominant system), so convergence cannot stall upward.
    #[test]
    fn residual_decreases(edges in any_edges()) {
        let mut s = HeatSolver::new(12, 12, edges);
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            let r = s.step();
            prop_assert!(r <= last + 1e-12, "{r} > {last}");
            last = r;
        }
    }

    /// Checkpoint/restore is exact at any point of the solve.
    #[test]
    fn checkpoint_restore_is_exact(edges in any_edges(), steps in 0u64..60) {
        let mut s = HeatSolver::new(9, 9, edges);
        for _ in 0..steps {
            s.step();
        }
        let ck = s.checkpoint();
        let mut r = HeatSolver::new(9, 9, edges);
        r.restore(&ck).unwrap();
        prop_assert_eq!(r.grid(), s.grid());
        prop_assert_eq!(r.iteration(), s.iteration());
        // Continue both one step: still identical.
        s.step();
        r.step();
        prop_assert_eq!(r.grid(), s.grid());
    }

    /// The solved field is independent of how often we checkpoint/restore
    /// along the way (restart transparency — the property the paper's
    /// whole methodology assumes of the application under test).
    #[test]
    fn restarts_are_transparent(edges in any_edges(), cut in 1u64..40) {
        let nev = NevPolicy::default();
        let mut direct = HeatSolver::new(8, 8, edges);
        let o1 = direct.run(1e-11, 20_000, &nev);
        prop_assert!(matches!(o1, SolveOutcome::Converged(_)));

        let mut first = HeatSolver::new(8, 8, edges);
        for _ in 0..cut {
            first.step();
        }
        let ck = first.checkpoint();
        let mut resumed = HeatSolver::new(8, 8, edges);
        resumed.restore(&ck).unwrap();
        let o2 = resumed.run(1e-11, 20_000, &nev);
        prop_assert!(matches!(o2, SolveOutcome::Converged(_)));
        prop_assert!(resumed.max_diff(&direct) < 1e-8);
    }
}
