//! Runtime SDC guards: per-layer activation range envelopes.
//!
//! A corrupted weight (the paper's checkpoint bit flips, Section IV) tends
//! to push some layer's activations far outside the range the clean model
//! ever produces — most dramatically for exponent-field flips, which the
//! paper identifies as the dominant source of silent data corruption. An
//! [`EnvelopeSet`] captures the clean model's per-layer activation extremes
//! at load time and [`Network::forward_guarded`] checks each parameterized
//! layer's output against them with one SIMD min/max reduction, turning
//! would-be silent corruptions into detected trips the serving layer can
//! fail over from. Parameter-free layers (ReLU, pooling, flatten) are
//! calibrated for observability but not re-reduced on the hot path: they
//! only select or clamp values their producer already exposed to a check.
//!
//! Envelopes are keyed on *(model, dtype)*: narrowed-precision weights
//! (bf16/f16 round-trips) shift clean activation ranges, so an f32-derived
//! envelope checked against a bf16 replica would false-trip. The binding is
//! recorded at calibration time and asserted on every guarded forward, the
//! same keying discipline as the experiment runner's baseline curves.
//!
//! Determinism: under the lane-stable kernel contract (DESIGN.md §6) each
//! sample's activations are bit-identical regardless of how requests are
//! batched together, so an envelope calibrated over a request corpus is
//! exact for *any* re-batching of that corpus — a clean replica serving the
//! corpus never trips, deterministically, at every kernel mode and thread
//! count.

use crate::network::Network;
use sefi_tensor::{minmax_nan, Tensor};

/// Check bounds for one layer's activations (already widened by the
/// calibration slack).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerEnvelope {
    /// Layer name (must match the network's layer at the same index).
    pub layer: String,
    /// Inclusive lower bound on every activation element.
    pub lo: f32,
    /// Inclusive upper bound on every activation element.
    pub hi: f32,
    /// Whether [`Network::forward_guarded`] reduces this layer's output.
    /// Only parameterized (producer) layers are checked: a corrupted
    /// weight first surfaces at the output of the layer owning it, while
    /// parameter-free layers (ReLU, pooling, flatten) merely select or
    /// clamp values the producer check has already screened — reducing
    /// them again costs a full pass over the activations and can never
    /// detect anything new.
    pub checked: bool,
}

/// Per-layer activation envelopes calibrated from a clean model, bound to
/// the (model, dtype) pair they were calibrated on.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeSet {
    model: String,
    dtype: String,
    slack: f32,
    layers: Vec<LayerEnvelope>,
}

impl EnvelopeSet {
    /// Model identifier this set was calibrated for.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Dtype identifier this set was calibrated for.
    pub fn dtype(&self) -> &str {
        &self.dtype
    }

    /// Slack fraction the observed ranges were widened by.
    pub fn slack(&self) -> f32 {
        self.slack
    }

    /// Per-layer check bounds, in network layer order.
    pub fn layers(&self) -> &[LayerEnvelope] {
        &self.layers
    }

    /// Panic unless this set was calibrated for exactly `(model, dtype)`.
    ///
    /// Narrowed weights shift clean activation ranges, so reusing an f32
    /// envelope on a bf16/f16 replica false-trips; envelopes must be keyed
    /// on (model, dtype) like the runner's baseline curves.
    pub fn assert_binding(&self, model: &str, dtype: &str) {
        assert!(
            self.model == model && self.dtype == dtype,
            "activation envelopes calibrated for ({}, {}) used with ({}, {}); \
             envelopes are keyed on (model, dtype) — recalibrate per dtype",
            self.model,
            self.dtype,
            model,
            dtype
        );
    }
}

/// A tripped activation guard: which layer deviated and what was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationTrip {
    /// Index of the tripped layer in the network stack.
    pub layer_index: usize,
    /// Name of the tripped layer.
    pub layer: String,
    /// Observed batch activation minimum.
    pub observed_lo: f32,
    /// Observed batch activation maximum.
    pub observed_hi: f32,
    /// Envelope lower bound that was violated (or held, if `nan` tripped).
    pub bound_lo: f32,
    /// Envelope upper bound that was violated (or held, if `nan` tripped).
    pub bound_hi: f32,
    /// True if the trip was caused by a NaN activation.
    pub nan: bool,
}

impl std::fmt::Display for ActivationTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "guard trip at layer {} ({:?}): observed [{:e}, {:e}] vs envelope [{:e}, {:e}]{}",
            self.layer_index,
            self.layer,
            self.observed_lo,
            self.observed_hi,
            self.bound_lo,
            self.bound_hi,
            if self.nan { ", NaN present" } else { "" }
        )
    }
}

impl Network {
    /// Calibrate per-layer activation envelopes from clean forward passes
    /// over `batches`, widening each observed range by `slack` (fraction of
    /// the range) on both sides. The network must hold *clean* weights;
    /// calibration panics if any activation is non-finite.
    ///
    /// `model` / `dtype` record the binding checked by
    /// [`EnvelopeSet::assert_binding`] and [`Network::forward_guarded`].
    pub fn calibrate_envelopes(
        &mut self,
        batches: &[Tensor],
        slack: f32,
        model: &str,
        dtype: &str,
    ) -> EnvelopeSet {
        assert!(!batches.is_empty(), "calibration needs at least one batch");
        assert!(slack >= 0.0, "slack must be non-negative");
        let producers = self.layer_has_params();
        let mut names: Vec<String> = Vec::new();
        let mut lo: Vec<f32> = Vec::new();
        let mut hi: Vec<f32> = Vec::new();
        for (bi, batch) in batches.iter().enumerate() {
            let first = bi == 0;
            self.forward_observed(batch.clone(), false, |i, name, t| {
                let m = minmax_nan(t.data());
                assert!(
                    !m.nan,
                    "clean calibration forward produced NaN at layer {name:?} — \
                     calibrate from verified-clean weights only"
                );
                if first && i == names.len() {
                    names.push(name.to_string());
                    lo.push(m.lo);
                    hi.push(m.hi);
                } else {
                    if m.lo < lo[i] {
                        lo[i] = m.lo;
                    }
                    if m.hi > hi[i] {
                        hi[i] = m.hi;
                    }
                }
                true
            });
        }
        let layers = names
            .into_iter()
            .enumerate()
            .map(|(i, layer)| {
                // Degenerate (constant) activations get a floor-width pad so
                // the envelope is never a zero-width knife edge.
                let pad = slack * (hi[i] - lo[i]).max(1e-6);
                LayerEnvelope { layer, lo: lo[i] - pad, hi: hi[i] + pad, checked: producers[i] }
            })
            .collect();
        EnvelopeSet { model: model.to_string(), dtype: dtype.to_string(), slack, layers }
    }

    /// Guarded inference forward: every *parameterized* layer's output is
    /// range-checked against `env` with one SIMD min/max reduction
    /// (parameter-free layers are calibrated but skipped — see
    /// [`LayerEnvelope::checked`]). Returns the logits, or the first
    /// [`ActivationTrip`] — in which case downstream layers never ran and
    /// the corrupted activations were not propagated.
    ///
    /// The caller asserts dtype binding separately via
    /// [`EnvelopeSet::assert_binding`]; here only the structural match
    /// (layer count and names) is enforced.
    pub fn forward_guarded(
        &mut self,
        x: Tensor,
        env: &EnvelopeSet,
    ) -> Result<Tensor, ActivationTrip> {
        assert_eq!(
            env.layers.len(),
            self.layer_names().len(),
            "envelope layer count does not match network"
        );
        let mut trip: Option<ActivationTrip> = None;
        let out = self.forward_observed(x, false, |i, name, t| {
            let e = &env.layers[i];
            debug_assert_eq!(e.layer, name, "envelope/network layer order mismatch");
            if !e.checked {
                return true;
            }
            let m = minmax_nan(t.data());
            if m.nan || m.lo < e.lo || m.hi > e.hi {
                trip = Some(ActivationTrip {
                    layer_index: i,
                    layer: name.to_string(),
                    observed_lo: m.lo,
                    observed_hi: m.hi,
                    bound_lo: e.lo,
                    bound_hi: e.hi,
                    nan: m.nan,
                });
                false
            } else {
                true
            }
        });
        match out {
            Some(t) => Ok(t),
            None => Err(trip.expect("aborted forward implies a recorded trip")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, ReLU};
    use sefi_rng::DetRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = DetRng::new(seed);
        Network::new(vec![
            Box::new(Conv2d::new("conv1", 3, 4, 3, 1, 1, &mut rng)),
            Box::new(ReLU::new("relu1")),
            Box::new(MaxPool2d::new("pool1", 2, 2)),
            Box::new(Flatten::new("flat")),
            Box::new(Dense::new("fc", 4 * 4 * 4, 10, &mut rng)),
        ])
    }

    fn corpus(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|_| {
                let data: Vec<f32> =
                    (0..2 * 3 * 8 * 8).map(|_| rng.uniform_range(-1.0, 1.0) as f32).collect();
                Tensor::from_vec(data, &[2, 3, 8, 8])
            })
            .collect()
    }

    #[test]
    fn clean_forward_never_trips_on_calibration_corpus() {
        let mut net = tiny_net(1);
        let batches = corpus(4, 7);
        let env = net.calibrate_envelopes(&batches, 0.5, "tiny", "f32");
        env.assert_binding("tiny", "f32");
        for b in &batches {
            let guarded = net.forward_guarded(b.clone(), &env).expect("clean forward tripped");
            let plain = net.forward(b.clone(), false);
            assert_eq!(guarded.data(), plain.data(), "guarding must not perturb outputs");
        }
    }

    #[test]
    fn rebatched_corpus_never_trips() {
        // Batch-composition invariance: samples served one at a time stay
        // inside envelopes calibrated on two-sample batches.
        let mut net = tiny_net(1);
        let batches = corpus(3, 9);
        let env = net.calibrate_envelopes(&batches, 0.0, "tiny", "f32");
        for b in &batches {
            for s in 0..2 {
                let one = Tensor::from_vec(
                    b.data()[s * 3 * 64..(s + 1) * 3 * 64].to_vec(),
                    &[1, 3, 8, 8],
                );
                net.forward_guarded(one, &env).expect("single-sample re-batch tripped");
            }
        }
    }

    #[test]
    fn exponent_msb_weight_flip_trips_within_one_batch() {
        let mut net = tiny_net(1);
        let batches = corpus(4, 7);
        let env = net.calibrate_envelopes(&batches, 0.5, "tiny", "f32");
        // Flip the exponent MSB of the first conv weight — the paper's
        // highest-impact single-bit corruption.
        {
            let p = &mut net.params_mut()[0];
            let w = p.value.data_mut();
            w[0] = f32::from_bits(w[0].to_bits() ^ (1 << 30));
        }
        let trip = net
            .forward_guarded(batches[0].clone(), &env)
            .expect_err("exponent-MSB flip must trip the guard in one batch");
        assert_eq!(trip.layer_index, 0, "trip should localise to the corrupted conv layer");
    }

    #[test]
    fn nan_weight_trips_with_nan_flag() {
        let mut net = tiny_net(1);
        let batches = corpus(2, 3);
        let env = net.calibrate_envelopes(&batches, 0.5, "tiny", "f32");
        {
            let p = &mut net.params_mut()[0];
            p.value.data_mut()[0] = f32::NAN;
        }
        let trip = net.forward_guarded(batches[0].clone(), &env).expect_err("NaN must trip");
        assert!(trip.nan);
    }

    #[test]
    #[should_panic(expected = "keyed on (model, dtype)")]
    fn binding_mismatch_panics() {
        let mut net = tiny_net(1);
        let env = net.calibrate_envelopes(&corpus(1, 3), 0.5, "tiny", "f32");
        env.assert_binding("tiny", "bf16");
    }

    #[test]
    fn slack_widens_bounds() {
        let mut net = tiny_net(1);
        let batches = corpus(2, 3);
        let tight = net.calibrate_envelopes(&batches, 0.0, "tiny", "f32");
        let wide = net.calibrate_envelopes(&batches, 0.5, "tiny", "f32");
        for (t, w) in tight.layers().iter().zip(wide.layers()) {
            assert!(w.lo < t.lo && w.hi > t.hi, "slack must strictly widen {}", t.layer);
        }
    }
}
