//! A from-scratch deep-learning training framework.
//!
//! This is the numeric engine underneath the three framework frontends
//! (`sefi-frameworks`). It provides layers with hand-derived backprop,
//! softmax-cross-entropy loss, SGD with momentum, a deterministic training
//! loop with checkpoint export/import, and N-EV collapse detection (the
//! paper's criterion for "the training collapsed when computing some NaN or
//! extreme value", Section V-B).
//!
//! Determinism: given a seed, initialization, batch order, and every
//! numeric kernel are bit-stable (see `sefi-rng` and `sefi-tensor`), so two
//! trainings from the same checkpoint diverge *only* if their weights
//! differ — the property that makes the paper's "restarted with no change"
//! (RWC) measurements meaningful.

#![deny(missing_docs)]

mod guard;
pub mod layers;
mod loss;
mod network;
mod optim;
mod statedict;
mod train;

pub use guard::{ActivationTrip, EnvelopeSet, LayerEnvelope};
pub use layers::{
    AvgPool2d, BatchNorm2d, Conv2d, Dense, Flatten, Layer, MaxPool2d, ParamRefMut, ReLU, Residual,
    StateRefMut,
};
pub use loss::softmax_cross_entropy;
pub use network::Network;
pub use optim::{Sgd, SgdConfig};
pub use statedict::{NamedTensor, StateDict};
pub use train::{evaluate, EpochRecord, TrainConfig, TrainOutcome, Trainer};
