//! Deterministic training loop with collapse detection.

use crate::loss::softmax_cross_entropy;
use crate::network::Network;
use crate::optim::{Sgd, SgdConfig};
use sefi_data::{BatchIter, Split, SyntheticCifar10};
use sefi_float::NevPolicy;

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer hyperparameters.
    pub sgd: SgdConfig,
    /// What counts as a collapse-inducing value (paper's N-EV criterion).
    pub nev: NevPolicy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { batch_size: 32, sgd: SgdConfig::default(), nev: NevPolicy::default() }
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Test-set accuracy after the epoch, in `[0, 1]`.
    pub test_accuracy: f64,
}

/// How a training run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainOutcome {
    /// Ran to the requested epoch.
    Completed {
        /// Per-epoch records.
        history: Vec<EpochRecord>,
    },
    /// The network computed a NaN or extreme value and collapsed — the
    /// paper's "N-EV" event (Section V-B).
    Collapsed {
        /// Epoch in which the collapse occurred.
        epoch: usize,
        /// Records for the epochs completed before the collapse.
        history: Vec<EpochRecord>,
    },
}

impl TrainOutcome {
    /// The epoch history regardless of how the run ended.
    pub fn history(&self) -> &[EpochRecord] {
        match self {
            TrainOutcome::Completed { history } | TrainOutcome::Collapsed { history, .. } => {
                history
            }
        }
    }

    /// True if the run collapsed on an N-EV.
    pub fn collapsed(&self) -> bool {
        matches!(self, TrainOutcome::Collapsed { .. })
    }

    /// Final test accuracy, if at least one epoch completed.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.history().last().map(|r| r.test_accuracy)
    }
}

/// Classification accuracy of `net` on a split.
pub fn evaluate(net: &mut Network, data: &SyntheticCifar10, split: Split) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for batch in BatchIter::sequential(data, split, 64) {
        let preds = net.predict(batch.images);
        for (p, &l) in preds.iter().zip(&batch.labels) {
            if *p == l as usize {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Drives epochs of SGD over a network.
pub struct Trainer {
    config: TrainConfig,
    optimizer: Sgd,
}

impl Trainer {
    /// New trainer with fresh optimizer state.
    pub fn new(config: TrainConfig) -> Self {
        let sgd = config.sgd;
        Trainer { config, optimizer: Sgd::new(sgd) }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The optimizer (momentum-buffer export/import for checkpoints that
    /// carry optimizer state).
    pub fn optimizer(&self) -> &Sgd {
        &self.optimizer
    }

    /// Mutable optimizer access.
    pub fn optimizer_mut(&mut self) -> &mut Sgd {
        &mut self.optimizer
    }

    /// Train `net` from `start_epoch` (inclusive) to `end_epoch`
    /// (exclusive). Batch order for epoch `e` depends only on the dataset
    /// seed and `e`, so resuming from a checkpoint saved at epoch `k`
    /// replays exactly the remaining schedule of an uninterrupted run —
    /// the paper's restart-comparison protocol (Table III: "a checkpoint
    /// from epoch 20 was used").
    ///
    /// A non-finite loss or prediction collapse aborts the run with
    /// [`TrainOutcome::Collapsed`]: this is the observable consequence of a
    /// NaN or extreme value reaching the computation, matching how the
    /// paper's trainings "crash" (Section V-B2).
    pub fn train(
        &mut self,
        net: &mut Network,
        data: &SyntheticCifar10,
        start_epoch: usize,
        end_epoch: usize,
    ) -> TrainOutcome {
        let mut history = Vec::new();
        // A freshly loaded (possibly corrupted) model that already contains
        // an N-EV collapses on first use.
        if self.weights_have_nev(net) {
            return TrainOutcome::Collapsed { epoch: start_epoch, history };
        }
        for epoch in start_epoch..end_epoch {
            let mut loss_acc = 0.0f64;
            let mut batches = 0usize;
            for batch in BatchIter::new(data, Split::Train, self.config.batch_size, epoch) {
                net.zero_grad();
                let logits = net.forward(batch.images, true);
                let (loss, dlogits) = softmax_cross_entropy(&logits, &batch.labels);
                if !loss.is_finite() {
                    return TrainOutcome::Collapsed { epoch, history };
                }
                net.backward(dlogits);
                self.optimizer.step(&mut net.params_mut());
                loss_acc += loss;
                batches += 1;
            }
            if self.weights_have_nev(net) {
                return TrainOutcome::Collapsed { epoch, history };
            }
            let test_accuracy = evaluate(net, data, Split::Test);
            history.push(EpochRecord {
                epoch,
                train_loss: loss_acc / batches.max(1) as f64,
                test_accuracy,
            });
        }
        TrainOutcome::Completed { history }
    }

    fn weights_have_nev(&self, net: &mut Network) -> bool {
        let sd = net.state_dict();
        sd.entries().iter().any(|e| {
            e.tensor.data().iter().any(|&v| self.config.nev.classify_f64(v as f64).is_some())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, ReLU};
    use sefi_data::DataConfig;
    use sefi_rng::DetRng;

    fn mlp(seed: u64, size: usize) -> Network {
        let mut rng = DetRng::new(seed);
        Network::new(vec![
            Box::new(Flatten::new("flat")),
            Box::new(Dense::new("fc1", 3 * size * size, 32, &mut rng)),
            Box::new(ReLU::new("relu1")),
            Box::new(Dense::new("fc2", 32, 10, &mut rng)),
        ])
    }

    fn data() -> SyntheticCifar10 {
        SyntheticCifar10::generate(DataConfig {
            train: 300,
            test: 100,
            image_size: 8,
            seed: 11,
            noise: 0.15,
        })
    }

    #[test]
    fn training_learns_the_task() {
        let d = data();
        let mut net = mlp(3, 8);
        let before = evaluate(&mut net, &d, Split::Test);
        let mut trainer = Trainer::new(TrainConfig::default());
        let outcome = trainer.train(&mut net, &d, 0, 8);
        assert!(!outcome.collapsed());
        let after = outcome.final_accuracy().unwrap();
        assert!(after > before + 0.2, "no learning: {before} -> {after}");
        assert!(after > 0.4, "final accuracy too low: {after}");
    }

    #[test]
    fn training_is_bitwise_deterministic() {
        let d = data();
        let run = || {
            let mut net = mlp(3, 8);
            let mut trainer = Trainer::new(TrainConfig::default());
            let out = trainer.train(&mut net, &d, 0, 3);
            (out.history().to_vec(), net.state_dict())
        };
        let (h1, sd1) = run();
        let (h2, sd2) = run();
        assert_eq!(h1, h2);
        assert_eq!(sd1, sd2);
    }

    #[test]
    fn resume_equals_uninterrupted_run() {
        let d = data();
        // Uninterrupted 5 epochs.
        let mut full = mlp(7, 8);
        let mut t_full = Trainer::new(TrainConfig::default());
        let _ = t_full.train(&mut full, &d, 0, 5);
        // 3 epochs, checkpoint, resume 2 more with a *fresh* trainer whose
        // momentum restarts — like the paper's frameworks, optimizer state
        // is not checkpointed (the paper notes Fig. 3b's offset comes from
        // "not saving other types of optimization information").
        let mut part = mlp(7, 8);
        let mut t1 = Trainer::new(TrainConfig::default());
        let _ = t1.train(&mut part, &d, 0, 3);
        let sd = part.state_dict();
        let mut resumed = mlp(999, 8); // different init, then overwritten
        resumed.load_state_dict(&sd).unwrap();
        let mut t2 = Trainer::new(TrainConfig::default());
        let out = t2.train(&mut resumed, &d, 3, 5);
        // With momentum reset the resumed run need not be bit-identical to
        // the uninterrupted one, but it must be deterministic: repeating the
        // resume gives identical results.
        let mut resumed2 = mlp(1000, 8);
        resumed2.load_state_dict(&sd).unwrap();
        let mut t3 = Trainer::new(TrainConfig::default());
        let out2 = t3.train(&mut resumed2, &d, 3, 5);
        assert_eq!(out.history(), out2.history());
        assert_eq!(resumed.state_dict(), resumed2.state_dict());
    }

    #[test]
    fn nan_weight_collapses_immediately() {
        let d = data();
        let mut net = mlp(3, 8);
        let mut sd = net.state_dict();
        // Poison one weight.
        let poisoned: Vec<_> = sd
            .entries()
            .iter()
            .map(|e| {
                let mut t = e.tensor.clone();
                if e.path == "fc1/W" {
                    t.data_mut()[0] = f32::NAN;
                }
                (e.path.clone(), t, e.trainable)
            })
            .collect();
        sd = StateDict::new();
        for (p, t, tr) in poisoned {
            sd.push(p, t, tr);
        }
        net.load_state_dict(&sd).unwrap();
        let mut trainer = Trainer::new(TrainConfig::default());
        let out = trainer.train(&mut net, &d, 20, 22);
        assert!(matches!(out, TrainOutcome::Collapsed { epoch: 20, .. }));
    }

    #[test]
    fn extreme_weight_collapses() {
        let d = data();
        let mut net = mlp(3, 8);
        {
            let mut params = net.params_mut();
            params[0].value.data_mut()[0] = 1e32; // beyond default N-EV threshold
        }
        let mut trainer = Trainer::new(TrainConfig::default());
        let out = trainer.train(&mut net, &d, 0, 1);
        assert!(out.collapsed());
    }

    use crate::StateDict;
}
