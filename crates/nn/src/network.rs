//! Sequential network container.

use crate::layers::{Layer, ParamRefMut};
use crate::statedict::StateDict;
use sefi_tensor::Tensor;
use std::collections::HashMap;

/// A feed-forward stack of layers (which may themselves be composite, e.g.
/// [`crate::Residual`]) with qualified parameter naming and state-dict
/// import/export.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Build from a layer stack.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        let mut names = std::collections::HashSet::new();
        for l in &layers {
            assert!(
                names.insert(l.layer_name().to_string()),
                "duplicate layer name {:?}",
                l.layer_name()
            );
        }
        Network { layers }
    }

    /// Layer names in order.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.layer_name()).collect()
    }

    /// Forward through all layers.
    pub fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let mut h = x;
        for layer in &mut self.layers {
            h = layer.forward(h, train);
        }
        h
    }

    /// True per layer iff it owns trainable parameters — the "producer"
    /// layers whose outputs the activation guards reduce.
    pub fn layer_has_params(&mut self) -> Vec<bool> {
        self.layers.iter_mut().map(|l| !l.params_mut().is_empty()).collect()
    }

    /// Forward through all layers, handing each layer's output to an
    /// observer before it feeds the next layer — the hook the activation
    /// guards ([`crate::EnvelopeSet`]) build on. An observer returning
    /// `false` aborts the pass (remaining layers never run, so a detected
    /// corruption is not propagated further) and yields `None`.
    pub fn forward_observed(
        &mut self,
        x: Tensor,
        train: bool,
        mut observe: impl FnMut(usize, &str, &Tensor) -> bool,
    ) -> Option<Tensor> {
        let mut h = x;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            h = layer.forward(h, train);
            if !observe(i, layer.layer_name(), &h) {
                return None;
            }
        }
        Some(h)
    }

    /// Backward through all layers (after a forward pass).
    pub fn backward(&mut self, dout: Tensor) -> Tensor {
        let mut d = dout;
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(d);
        }
        d
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// All trainable parameters with fully qualified `layer/param` names,
    /// in deterministic traversal order.
    pub fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            let prefix = layer.layer_name().to_string();
            for p in layer.params_mut() {
                out.push(ParamRefMut {
                    name: format!("{prefix}/{}", p.name),
                    value: p.value,
                    grad: p.grad,
                });
            }
        }
        out
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Export parameters and auxiliary state as a [`StateDict`].
    pub fn state_dict(&mut self) -> StateDict {
        let mut sd = StateDict::new();
        for layer in &mut self.layers {
            let prefix = layer.layer_name().to_string();
            for p in layer.params_mut() {
                sd.push(format!("{prefix}/{}", p.name), p.value.clone(), true);
            }
            for s in layer.state_mut() {
                sd.push(format!("{prefix}/{}", s.name), s.value.clone(), false);
            }
        }
        sd
    }

    /// Load a [`StateDict`] previously produced by [`Network::state_dict`]
    /// on an identically shaped network. Every network tensor must be
    /// present with a matching shape; extra entries are rejected too —
    /// silent partial loads would invalidate experiments.
    pub fn load_state_dict(&mut self, sd: &StateDict) -> Result<(), String> {
        let mut by_path: HashMap<&str, &crate::NamedTensor> =
            sd.entries().iter().map(|e| (e.path.as_str(), e)).collect();
        for layer in &mut self.layers {
            let prefix = layer.layer_name().to_string();
            for p in layer.params_mut() {
                let path = format!("{prefix}/{}", p.name);
                let entry = by_path
                    .remove(path.as_str())
                    .ok_or_else(|| format!("missing tensor {path:?} in state dict"))?;
                if entry.tensor.shape() != p.value.shape() {
                    return Err(format!(
                        "shape mismatch for {path:?}: network {:?}, checkpoint {:?}",
                        p.value.shape(),
                        entry.tensor.shape()
                    ));
                }
                *p.value = entry.tensor.clone();
            }
            for s in layer.state_mut() {
                let path = format!("{prefix}/{}", s.name);
                let entry = by_path
                    .remove(path.as_str())
                    .ok_or_else(|| format!("missing tensor {path:?} in state dict"))?;
                if entry.tensor.shape() != s.value.shape() {
                    return Err(format!(
                        "shape mismatch for {path:?}: network {:?}, checkpoint {:?}",
                        s.value.shape(),
                        entry.tensor.shape()
                    ));
                }
                *s.value = entry.tensor.clone();
            }
        }
        if let Some((path, _)) = by_path.into_iter().next() {
            return Err(format!("unexpected tensor {path:?} in state dict"));
        }
        Ok(())
    }

    /// Class predictions (row argmax of the logits) for a batch.
    pub fn predict(&mut self, x: Tensor) -> Vec<usize> {
        self.forward(x, false).argmax_rows()
    }

    /// True if any parameter or state tensor holds a non-finite value.
    pub fn has_non_finite(&mut self) -> bool {
        self.state_dict().has_non_finite()
    }

    /// Total bytes of kernel workspace retained across steps by all layers
    /// (grow-once scratch that replaces per-step allocations).
    pub fn workspace_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.workspace_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, ReLU};
    use sefi_rng::DetRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = DetRng::new(seed);
        Network::new(vec![
            Box::new(Conv2d::new("conv1", 3, 4, 3, 1, 1, &mut rng)),
            Box::new(ReLU::new("relu1")),
            Box::new(MaxPool2d::new("pool1", 2, 2)),
            Box::new(Flatten::new("flat")),
            Box::new(Dense::new("fc", 4 * 4 * 4, 10, &mut rng)),
        ])
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny_net(1);
        let y = net.forward(Tensor::zeros(&[2, 3, 8, 8]), false);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn qualified_param_names() {
        let mut net = tiny_net(1);
        let names: Vec<String> = net.params_mut().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["conv1/W", "conv1/b", "fc/W", "fc/b"]);
    }

    #[test]
    fn state_dict_roundtrip_restores_outputs() {
        let mut a = tiny_net(1);
        let sd = a.state_dict();
        let mut b = tiny_net(2); // different init
        let x = Tensor::full(&[1, 3, 8, 8], 0.5);
        assert_ne!(a.forward(x.clone(), false).data(), b.forward(x.clone(), false).data());
        b.load_state_dict(&sd).unwrap();
        assert_eq!(a.forward(x.clone(), false).data(), b.forward(x, false).data());
    }

    #[test]
    fn load_rejects_missing_and_extra_and_mismatched() {
        let mut net = tiny_net(1);
        let mut sd = net.state_dict();
        // Extra entry.
        sd.push("ghost/W".into(), Tensor::zeros(&[1]), true);
        assert!(net.load_state_dict(&sd).is_err());
        // Missing entry.
        let sd2 = {
            let full = net.state_dict();
            let mut partial = StateDict::new();
            for e in full.entries().iter().skip(1) {
                partial.push(e.path.clone(), e.tensor.clone(), e.trainable);
            }
            partial
        };
        assert!(net.load_state_dict(&sd2).is_err());
        // Shape mismatch.
        let sd3 = {
            let full = net.state_dict();
            let mut bad = StateDict::new();
            for e in full.entries() {
                let t = if e.path == "conv1/b" { Tensor::zeros(&[5]) } else { e.tensor.clone() };
                bad.push(e.path.clone(), t, e.trainable);
            }
            bad
        };
        assert!(net.load_state_dict(&sd3).unwrap_err().contains("shape mismatch"));
    }

    #[test]
    fn num_parameters_counts_scalars() {
        let mut net = tiny_net(1);
        // conv: 4*3*3*3 + 4 = 112; fc: 10*64 + 10 = 650
        assert_eq!(net.num_parameters(), 112 + 650);
    }

    #[test]
    #[should_panic(expected = "duplicate layer name")]
    fn duplicate_layer_names_rejected() {
        let mut rng = DetRng::new(1);
        Network::new(vec![Box::new(ReLU::new("x")), Box::new(Dense::new("x", 2, 2, &mut rng))]);
    }
}
