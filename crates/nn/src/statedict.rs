//! Named-tensor state dictionaries — the bridge between networks and
//! checkpoint files.
//!
//! A [`StateDict`] is an ordered list of `(path, tensor)` pairs. The
//! framework frontends map these engine-level paths onto their own
//! checkpoint layouts (`sefi-frameworks`), which is where the paper's
//! "equivalent, not equal" cross-framework differences live.

use sefi_tensor::Tensor;

/// One named tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTensor {
    /// Slash-separated engine path, e.g. `conv1/W`.
    pub path: String,
    /// The tensor value.
    pub tensor: Tensor,
    /// True for trainable parameters, false for auxiliary state
    /// (batch-norm running statistics).
    pub trainable: bool,
}

/// An ordered collection of named tensors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    entries: Vec<NamedTensor>,
}

impl StateDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry (paths must be unique).
    pub fn push(&mut self, path: String, tensor: Tensor, trainable: bool) {
        assert!(!self.entries.iter().any(|e| e.path == path), "duplicate state-dict path {path:?}");
        self.entries.push(NamedTensor { path, tensor, trainable });
    }

    /// Entries in insertion (network traversal) order.
    pub fn entries(&self) -> &[NamedTensor] {
        &self.entries
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no tensors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up by path.
    pub fn get(&self, path: &str) -> Option<&NamedTensor> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// Total number of scalar elements across all tensors.
    pub fn total_elements(&self) -> usize {
        self.entries.iter().map(|e| e.tensor.len()).sum()
    }

    /// True if any tensor holds a non-finite value (post-corruption check).
    pub fn has_non_finite(&self) -> bool {
        self.entries.iter().any(|e| e.tensor.has_non_finite())
    }
}

impl IntoIterator for StateDict {
    type Item = NamedTensor;
    type IntoIter = std::vec::IntoIter<NamedTensor>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut sd = StateDict::new();
        sd.push("conv1/W".into(), Tensor::zeros(&[2, 2]), true);
        sd.push("bn1/running_mean".into(), Tensor::zeros(&[2]), false);
        assert_eq!(sd.len(), 2);
        assert_eq!(sd.total_elements(), 6);
        assert!(sd.get("conv1/W").unwrap().trainable);
        assert!(!sd.get("bn1/running_mean").unwrap().trainable);
        assert!(sd.get("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_path_panics() {
        let mut sd = StateDict::new();
        sd.push("a".into(), Tensor::zeros(&[1]), true);
        sd.push("a".into(), Tensor::zeros(&[1]), true);
    }

    #[test]
    fn non_finite_detection() {
        let mut sd = StateDict::new();
        let mut t = Tensor::zeros(&[2]);
        t.data_mut()[0] = f32::INFINITY;
        sd.push("w".into(), t, true);
        assert!(sd.has_non_finite());
    }
}
