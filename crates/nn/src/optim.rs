//! SGD with momentum and weight decay.

use crate::layers::ParamRefMut;
use sefi_tensor::Tensor;

/// Hyperparameters for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Classical momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { lr: 0.01, momentum: 0.9, weight_decay: 5e-4 }
    }
}

/// Stochastic gradient descent.
///
/// Velocity buffers are keyed by the position of each parameter in the
/// network's deterministic traversal order, so an optimizer stays attached
/// to "its" parameters across steps without interior references.
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// New optimizer (velocities lazily initialized on first step).
    pub fn new(config: SgdConfig) -> Self {
        Sgd { config, velocity: Vec::new() }
    }

    /// The hyperparameters.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Change the learning rate (schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// The momentum (velocity) buffers, in parameter-traversal order.
    /// Empty until the first step.
    pub fn velocities(&self) -> &[Tensor] {
        &self.velocity
    }

    /// Install velocity buffers (checkpoint restore). Shapes are validated
    /// on the next [`Sgd::step`] against the parameter set.
    pub fn set_velocities(&mut self, velocities: Vec<Tensor>) {
        self.velocity = velocities;
    }

    /// Apply one update step to parameters in traversal order.
    pub fn step(&mut self, params: &mut [ParamRefMut<'_>]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.shape())).collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "optimizer bound to a different parameter set"
        );
        let c = self.config;
        for (p, vel) in params.iter_mut().zip(&mut self.velocity) {
            let v = vel.data_mut();
            let w = p.value.data_mut();
            let g = p.grad.data();
            for ((wi, vi), &gi) in w.iter_mut().zip(v.iter_mut()).zip(g) {
                let grad = gi + c.weight_decay * *wi;
                *vi = c.momentum * *vi - c.lr * grad;
                *wi += *vi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(v: &[f32]) -> (Tensor, Tensor) {
        (Tensor::from_vec(v.to_vec(), &[v.len()]), Tensor::zeros(&[v.len()]))
    }

    #[test]
    fn plain_sgd_descends() {
        let (mut w, mut g) = make(&[1.0, -2.0]);
        g.data_mut().copy_from_slice(&[0.5, -0.5]);
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0 });
        opt.step(&mut [ParamRefMut { name: "w".into(), value: &mut w, grad: &mut g }]);
        assert_eq!(w.data(), &[0.95, -1.95]);
    }

    #[test]
    fn momentum_accumulates() {
        let (mut w, mut g) = make(&[0.0]);
        g.data_mut()[0] = 1.0;
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 0.0 });
        opt.step(&mut [ParamRefMut { name: "w".into(), value: &mut w, grad: &mut g }]);
        assert!((w.data()[0] - (-0.1)).abs() < 1e-7);
        opt.step(&mut [ParamRefMut { name: "w".into(), value: &mut w, grad: &mut g }]);
        // v = 0.9*(-0.1) - 0.1 = -0.19; w = -0.1 - 0.19 = -0.29
        assert!((w.data()[0] - (-0.29)).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let (mut w, mut g) = make(&[10.0]);
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.1 });
        opt.step(&mut [ParamRefMut { name: "w".into(), value: &mut w, grad: &mut g }]);
        assert!((w.data()[0] - 9.9).abs() < 1e-6); // -lr * wd * w = -0.1
    }

    #[test]
    #[should_panic(expected = "different parameter set")]
    fn parameter_set_change_is_detected() {
        let (mut w, mut g) = make(&[1.0]);
        let mut opt = Sgd::new(SgdConfig::default());
        opt.step(&mut [ParamRefMut { name: "w".into(), value: &mut w, grad: &mut g }]);
        let (mut w2, mut g2) = make(&[1.0]);
        opt.step(&mut [
            ParamRefMut { name: "a".into(), value: &mut w, grad: &mut g },
            ParamRefMut { name: "b".into(), value: &mut w2, grad: &mut g2 },
        ]);
    }
}
