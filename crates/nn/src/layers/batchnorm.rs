//! Batch normalization over NCHW channels.
//!
//! Running statistics are *state*, not parameters: they ride along in
//! checkpoints (so the corrupter can hit them — they are part of the model
//! file, exactly like in the real frameworks) but the optimizer never
//! touches them.

use super::{Layer, ParamRefMut, StateRefMut};
use sefi_tensor::Tensor;

const EPS: f32 = 1e-5;
const MOMENTUM: f32 = 0.9;

/// Per-channel batch normalization for rank-4 inputs.
pub struct BatchNorm2d {
    name: String,
    gamma: Tensor,
    beta: Tensor,
    dgamma: Tensor,
    dbeta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    // Backward cache.
    cache: Option<BnCache>,
}

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    centered: Tensor,
}

impl BatchNorm2d {
    /// Identity-initialized batch norm over `channels`.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            name: name.to_string(),
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            dgamma: Tensor::zeros(&[channels]),
            dbeta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }
}

impl Layer for BatchNorm2d {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "BatchNorm2d expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.channels(), "channel mismatch");
        let m = (n * h * w) as f32;
        let plane = h * w;
        let src = x.data();

        let (mean, var): (Vec<f32>, Vec<f32>) = if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ci in 0..c {
                let mut acc = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &src[base..base + plane] {
                        acc += v as f64;
                    }
                }
                mean[ci] = (acc / m as f64) as f32;
                let mut vacc = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &src[base..base + plane] {
                        let d = v - mean[ci];
                        vacc += (d * d) as f64;
                    }
                }
                var[ci] = (vacc / m as f64) as f32;
            }
            // Update running stats.
            for (rm, &m) in self.running_mean.data_mut().iter_mut().zip(&mean) {
                *rm = MOMENTUM * *rm + (1.0 - MOMENTUM) * m;
            }
            for (rv, &v) in self.running_var.data_mut().iter_mut().zip(&var) {
                *rv = MOMENTUM * *rv + (1.0 - MOMENTUM) * v;
            }
            (mean, var)
        } else {
            (self.running_mean.data().to_vec(), self.running_var.data().to_vec())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
        let mut xhat = Tensor::zeros(&s);
        let mut centered = Tensor::zeros(&s);
        let mut out = Tensor::zeros(&s);
        {
            let xh = xhat.data_mut();
            let ce = centered.data_mut();
            let o = out.data_mut();
            let g = self.gamma.data();
            let b = self.beta.data();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    for k in 0..plane {
                        let idx = base + k;
                        let cent = src[idx] - mean[ci];
                        let nh = cent * inv_std[ci];
                        ce[idx] = cent;
                        xh[idx] = nh;
                        o[idx] = g[ci] * nh + b[ci];
                    }
                }
            }
        }
        if train {
            self.cache = Some(BnCache { xhat, inv_std, centered });
        }
        out
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward before forward(train)");
        let s = dout.shape().to_vec();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let m = (n * plane) as f32;
        let d = dout.data();
        let xh = cache.xhat.data();
        let cent = cache.centered.data();
        let g = self.gamma.data().to_vec();

        // Per-channel reductions (f64 accumulators).
        let mut sum_d = vec![0.0f64; c];
        let mut sum_d_xhat = vec![0.0f64; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                for k in 0..plane {
                    let idx = base + k;
                    sum_d[ci] += d[idx] as f64;
                    sum_d_xhat[ci] += (d[idx] * xh[idx]) as f64;
                }
            }
        }
        for ci in 0..c {
            self.dbeta.data_mut()[ci] += sum_d[ci] as f32;
            self.dgamma.data_mut()[ci] += sum_d_xhat[ci] as f32;
        }

        // dx = (gamma * inv_std / m) * (m*dout - sum_d - xhat * sum_d_xhat)
        let mut dx = Tensor::zeros(&s);
        {
            let o = dx.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    let k1 = g[ci] * cache.inv_std[ci] / m;
                    for k in 0..plane {
                        let idx = base + k;
                        o[idx] =
                            k1 * (m * d[idx] - sum_d[ci] as f32 - xh[idx] * sum_d_xhat[ci] as f32);
                    }
                }
            }
        }
        let _ = cent;
        dx
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut { name: "gamma".into(), value: &mut self.gamma, grad: &mut self.dgamma },
            ParamRefMut { name: "beta".into(), value: &mut self.beta, grad: &mut self.dbeta },
        ]
    }

    fn state_mut(&mut self) -> Vec<StateRefMut<'_>> {
        vec![
            StateRefMut { name: "running_mean".into(), value: &mut self.running_mean },
            StateRefMut { name: "running_var".into(), value: &mut self.running_var },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Tensor {
        Tensor::from_vec(
            (0..2 * 3 * 2 * 2).map(|i| ((i * 13) % 7) as f32 - 3.0).collect(),
            &[2, 3, 2, 2],
        )
    }

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm2d::new("bn", 3);
        let y = bn.forward(input(), true);
        // Per-channel mean ≈ 0, var ≈ 1.
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..2 {
                for k in 0..4 {
                    vals.push(y.data()[(ni * 3 + ci) * 4 + k] as f64);
                }
            }
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-5, "ch {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "ch {ci} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 3);
        // Run a few training passes to move the running stats.
        for _ in 0..5 {
            let _ = bn.forward(input(), true);
        }
        let y_eval = bn.forward(input(), false);
        let y_train = bn.forward(input(), true);
        assert_ne!(y_eval.data(), y_train.data());
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm2d::new("bn", 2);
        let x = Tensor::from_vec((0..16).map(|i| (i as f32 * 0.37).sin()).collect(), &[2, 2, 2, 2]);
        let y = bn.forward(x.clone(), true);
        // Weighted-sum loss so the gradient is not trivially zero
        // (a plain sum-loss has zero input-gradient through normalization).
        let wts: Vec<f32> = (0..16).map(|i| ((i * 7 % 5) as f32) - 2.0).collect();
        let loss =
            |t: &Tensor| -> f64 { t.data().iter().zip(&wts).map(|(&v, &w)| (v * w) as f64).sum() };
        let _ = loss(&y);
        let dout = Tensor::from_vec(wts.clone(), &[2, 2, 2, 2]);
        let dx = bn.backward(dout);

        let eps = 1e-2f32;
        for &flat in &[0usize, 5, 9, 15] {
            let num = {
                let mut bnp = BatchNorm2d::new("bn", 2);
                let mut xp = x.clone();
                xp.data_mut()[flat] += eps;
                let lp = loss(&bnp.forward(xp, true));
                let mut bnm = BatchNorm2d::new("bn", 2);
                let mut xm = x.clone();
                xm.data_mut()[flat] -= eps;
                let lm = loss(&bnm.forward(xm, true));
                (lp - lm) / (2.0 * eps as f64)
            };
            let ana = dx.data()[flat] as f64;
            assert!((num - ana).abs() < 5e-2 * (1.0 + ana.abs()), "dx[{flat}] {num} vs {ana}");
        }
    }

    #[test]
    fn state_and_params_are_separate() {
        let mut bn = BatchNorm2d::new("bn", 4);
        let pnames: Vec<String> = bn.params_mut().into_iter().map(|p| p.name).collect();
        assert_eq!(pnames, vec!["gamma", "beta"]);
        let snames: Vec<String> = bn.state_mut().into_iter().map(|s| s.name).collect();
        assert_eq!(snames, vec!["running_mean", "running_var"]);
    }
}
