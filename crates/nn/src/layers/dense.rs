//! Fully connected layer.

use super::{Layer, ParamRefMut};
use sefi_rng::DetRng;
use sefi_tensor::{he_normal, matmul, matmul_a_bt, matmul_at_b, Tensor};

/// A dense layer `y = x·Wᵀ + b` with `W: [out, in]`, matching the row-major
/// weight convention of PyTorch's `nn.Linear` (the frontends translate to
/// their own on-checkpoint layouts).
pub struct Dense {
    name: String,
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    dweight: Tensor,
    dbias: Tensor,
    cached_input: Option<Tensor>, // [n, in]
}

impl Dense {
    /// He-initialized dense layer.
    pub fn new(name: &str, in_features: usize, out_features: usize, rng: &mut DetRng) -> Self {
        Dense {
            name: name.to_string(),
            weight: he_normal(&[out_features, in_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
            dweight: Tensor::zeros(&[out_features, in_features]),
            dbias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// `(in_features, out_features)`.
    pub fn features(&self) -> (usize, usize) {
        (self.weight.shape()[1], self.weight.shape()[0])
    }
}

impl Layer for Dense {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Dense expects [n, features]");
        let mut y = matmul_a_bt(&x, &self.weight); // [n, out]
        let out = self.bias.data();
        for row in y.data_mut().chunks_mut(out.len()) {
            for (v, &b) in row.iter_mut().zip(out) {
                *v += b;
            }
        }
        self.cached_input = Some(x);
        y
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let x = self.cached_input.take().expect("backward before forward");
        // dW = doutᵀ · x  -> [out, in]
        self.dweight.add_assign(&matmul_at_b(&dout, &x));
        // db = column sums of dout.
        let out = self.dbias.len();
        {
            let db = self.dbias.data_mut();
            for row in dout.data().chunks(out) {
                for (acc, &v) in db.iter_mut().zip(row) {
                    *acc += v;
                }
            }
        }
        // dx = dout · W -> [n, in]
        matmul(&dout, &self.weight)
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut { name: "W".into(), value: &mut self.weight, grad: &mut self.dweight },
            ParamRefMut { name: "b".into(), value: &mut self.bias, grad: &mut self.dbias },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut rng = DetRng::new(1);
        let mut d = Dense::new("fc", 3, 2, &mut rng);
        // Overwrite weights with known values: W = [[1,2,3],[4,5,6]], b = [10, 20].
        d.weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        d.bias = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]);
        let y = d.forward(x, true);
        assert_eq!(y.data(), &[16.0, 35.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = DetRng::new(2);
        let mut d = Dense::new("fc", 4, 3, &mut rng);
        let x = Tensor::from_vec((0..8).map(|i| i as f32 * 0.3 - 1.0).collect(), &[2, 4]);
        let y = d.forward(x.clone(), true);
        let dout = Tensor::full(y.shape(), 1.0);
        let dx = d.backward(dout);

        let eps = 1e-2f32;
        // Numeric check on a few weight entries.
        for &flat in &[0usize, 5, 11] {
            let mut dp = Dense::new("fc", 4, 3, &mut DetRng::new(2));
            dp.weight.data_mut()[flat] += eps;
            let mut dm = Dense::new("fc", 4, 3, &mut DetRng::new(2));
            dm.weight.data_mut()[flat] -= eps;
            let num = (dp.forward(x.clone(), true).sum() - dm.forward(x.clone(), true).sum())
                / (2.0 * eps as f64);
            let ana = d.params_mut()[0].grad.data()[flat] as f64;
            assert!((num - ana).abs() < 1e-2 * (1.0 + ana.abs()), "dW[{flat}] {num} vs {ana}");
        }
        // dx for a sum loss equals column sums of W.
        for (i, &g) in dx.data().iter().take(4).enumerate() {
            let want: f32 = (0..3).map(|o| d.weight.at(&[o, i])).sum();
            assert!((g - want).abs() < 1e-4);
        }
    }
}
