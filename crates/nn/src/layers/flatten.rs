//! Flatten: `[n, …]` → `[n, prod(…)]` bridge between conv and dense stacks.

use super::Layer;
use sefi_tensor::Tensor;

/// Collapses all non-batch dimensions.
pub struct Flatten {
    name: String,
    input_shape: Vec<usize>,
}

impl Flatten {
    /// A named flatten layer.
    pub fn new(name: &str) -> Self {
        Flatten { name: name.to_string(), input_shape: Vec::new() }
    }
}

impl Layer for Flatten {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        self.input_shape = x.shape().to_vec();
        let n = self.input_shape[0];
        let rest: usize = self.input_shape[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        assert!(!self.input_shape.is_empty(), "backward before forward");
        dout.reshape(&self.input_shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let mut f = Flatten::new("f");
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let dx = f.backward(Tensor::zeros(&[2, 48]));
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }
}
