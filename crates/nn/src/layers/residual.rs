//! Residual block: `y = ReLU(main(x) + shortcut(x))`.
//!
//! The paper's third model is ResNet50, "a type of network that uses
//! shortcuts or skip connections to move between layers" (Section III-A).
//! Composite layers prefix their children's parameter names, so checkpoint
//! paths look like `res2a/conv1/W`.

use super::{Layer, ParamRefMut, StateRefMut};
use sefi_tensor::Tensor;

/// A residual block with a main branch and an optional projection shortcut
/// (identity when `None`). A final ReLU follows the join.
pub struct Residual {
    name: String,
    main: Vec<Box<dyn Layer>>,
    shortcut: Vec<Box<dyn Layer>>,
    relu_mask: Vec<bool>,
    cached_input: Option<Tensor>,
}

impl Residual {
    /// Build from branch layer stacks. An empty `shortcut` means identity.
    pub fn new(name: &str, main: Vec<Box<dyn Layer>>, shortcut: Vec<Box<dyn Layer>>) -> Self {
        assert!(!main.is_empty(), "residual main branch cannot be empty");
        Residual {
            name: name.to_string(),
            main,
            shortcut,
            relu_mask: Vec::new(),
            cached_input: None,
        }
    }
}

impl Layer for Residual {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        self.cached_input = Some(x.clone());
        let mut m = x.clone();
        for layer in &mut self.main {
            m = layer.forward(m, train);
        }
        let mut s = x;
        for layer in &mut self.shortcut {
            s = layer.forward(s, train);
        }
        assert_eq!(
            m.shape(),
            s.shape(),
            "residual join shape mismatch in {}: main {:?} vs shortcut {:?}",
            self.name,
            m.shape(),
            s.shape()
        );
        m.add_assign(&s);
        // Final ReLU.
        self.relu_mask.clear();
        self.relu_mask.reserve(m.len());
        for v in m.data_mut() {
            let pass = *v > 0.0;
            self.relu_mask.push(pass);
            if !pass {
                *v = 0.0;
            }
        }
        m
    }

    fn backward(&mut self, mut dout: Tensor) -> Tensor {
        assert_eq!(dout.len(), self.relu_mask.len(), "backward before forward");
        self.cached_input.take().expect("backward before forward");
        for (g, &pass) in dout.data_mut().iter_mut().zip(&self.relu_mask) {
            if !pass {
                *g = 0.0;
            }
        }
        // Main branch, reversed.
        let mut dm = dout.clone();
        for layer in self.main.iter_mut().rev() {
            dm = layer.backward(dm);
        }
        // Shortcut branch (identity passes dout straight through).
        let mut ds = dout;
        for layer in self.shortcut.iter_mut().rev() {
            ds = layer.backward(ds);
        }
        dm.add_assign(&ds);
        dm
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        let mut out = Vec::new();
        for layer in self.main.iter_mut().chain(self.shortcut.iter_mut()) {
            let prefix = layer.layer_name().to_string();
            for p in layer.params_mut() {
                out.push(ParamRefMut {
                    name: format!("{prefix}/{}", p.name),
                    value: p.value,
                    grad: p.grad,
                });
            }
        }
        out
    }

    fn state_mut(&mut self) -> Vec<StateRefMut<'_>> {
        let mut out = Vec::new();
        for layer in self.main.iter_mut().chain(self.shortcut.iter_mut()) {
            let prefix = layer.layer_name().to_string();
            for s in layer.state_mut() {
                out.push(StateRefMut { name: format!("{prefix}/{}", s.name), value: s.value });
            }
        }
        out
    }

    fn workspace_bytes(&self) -> usize {
        self.main.iter().chain(self.shortcut.iter()).map(|l| l.workspace_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, ReLU};
    use sefi_rng::DetRng;

    fn block(rng: &mut DetRng) -> Residual {
        Residual::new(
            "res1",
            vec![
                Box::new(Conv2d::new("conv1", 2, 2, 3, 1, 1, rng)),
                Box::new(ReLU::new("relu1")),
                Box::new(Conv2d::new("conv2", 2, 2, 3, 1, 1, rng)),
            ],
            vec![],
        )
    }

    #[test]
    fn identity_shortcut_preserves_shape() {
        let mut rng = DetRng::new(1);
        let mut r = block(&mut rng);
        let x = Tensor::full(&[1, 2, 4, 4], 0.5);
        let y = r.forward(x, true);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
        assert!(y.data().iter().all(|&v| v >= 0.0)); // post-join ReLU
    }

    #[test]
    fn param_names_are_prefixed() {
        let mut rng = DetRng::new(2);
        let mut r = block(&mut rng);
        let names: Vec<String> = r.params_mut().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["conv1/W", "conv1/b", "conv2/W", "conv2/b"]);
    }

    #[test]
    fn projection_shortcut_params_included() {
        let mut rng = DetRng::new(3);
        let r = Residual::new(
            "res2",
            vec![Box::new(Conv2d::new("conv1", 2, 4, 3, 2, 1, &mut rng))],
            vec![Box::new(Conv2d::new("proj", 2, 4, 1, 2, 0, &mut rng))],
        );
        let mut r = r;
        let names: Vec<String> = r.params_mut().into_iter().map(|p| p.name).collect();
        assert!(names.contains(&"proj/W".to_string()));
        let x = Tensor::full(&[1, 2, 8, 8], 0.3);
        let y = r.forward(x, true);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn gradient_flows_through_both_branches() {
        let mut rng = DetRng::new(4);
        let mut r = block(&mut rng);
        let x = Tensor::full(&[1, 2, 4, 4], 0.5);
        let y = r.forward(x, true);
        let dx = r.backward(Tensor::full(y.shape(), 1.0));
        assert_eq!(dx.shape(), &[1, 2, 4, 4]);
        // With identity shortcut the input gradient includes the masked
        // upstream gradient directly, so it cannot be all zeros.
        assert!(dx.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "main branch cannot be empty")]
    fn empty_main_rejected() {
        Residual::new("bad", vec![], vec![]);
    }
}
