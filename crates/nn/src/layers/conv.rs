//! 2-D convolution layer.

use super::{Layer, ParamRefMut};
use sefi_rng::DetRng;
use sefi_tensor::{conv2d_backward_ws_ex, conv2d_ws, he_normal, ConvSpec, ConvWorkspace, Tensor};

/// A convolutional layer with weights `[out_ch, in_ch, k, k]` and a bias.
///
/// Owns a [`ConvWorkspace`]: the backward pass reuses the im2col columns
/// the forward pass unfolded, and all conv scratch buffers persist across
/// steps (zero steady-state kernel allocations).
pub struct Conv2d {
    name: String,
    weight: Tensor,
    bias: Tensor,
    dweight: Tensor,
    dbias: Tensor,
    spec: ConvSpec,
    cached_input: Option<Tensor>,
    ws: ConvWorkspace,
    skip_input_grad: bool,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut DetRng,
    ) -> Self {
        let fan_in = in_ch * kernel * kernel;
        let shape = [out_ch, in_ch, kernel, kernel];
        Conv2d {
            name: name.to_string(),
            weight: he_normal(&shape, fan_in, rng),
            bias: Tensor::zeros(&[out_ch]),
            dweight: Tensor::zeros(&shape),
            dbias: Tensor::zeros(&[out_ch]),
            spec: ConvSpec { stride, pad },
            cached_input: None,
            ws: ConvWorkspace::new(),
            skip_input_grad: false,
        }
    }

    /// Mark this layer as the first of its network: its input gradient is
    /// never consumed, so the backward pass skips computing it (identically
    /// under both kernel generations) and returns zeros instead.
    pub fn skip_input_grad(mut self) -> Self {
        self.skip_input_grad = true;
        self
    }

    /// The convolution geometry.
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// Weight shape `[out_ch, in_ch, k, k]`.
    pub fn weight_shape(&self) -> &[usize] {
        self.weight.shape()
    }
}

impl Layer for Conv2d {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        let out = conv2d_ws(&x, &self.weight, &self.bias, self.spec, &mut self.ws);
        self.cached_input = Some(x);
        out
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let x = self.cached_input.take().expect("backward before forward");
        let grads = conv2d_backward_ws_ex(
            &x,
            &self.weight,
            &dout,
            self.spec,
            &mut self.ws,
            !self.skip_input_grad,
        );
        self.dweight.add_assign(&grads.dw);
        self.dbias.add_assign(&grads.db);
        grads.dx
    }

    fn workspace_bytes(&self) -> usize {
        self.ws.retained_bytes()
    }

    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        vec![
            ParamRefMut { name: "W".into(), value: &mut self.weight, grad: &mut self.dweight },
            ParamRefMut { name: "b".into(), value: &mut self.bias, grad: &mut self.dbias },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_params() {
        let mut rng = DetRng::new(1);
        let mut c = Conv2d::new("c1", 3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = c.forward(x, true);
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
        let names: Vec<String> = c.params_mut().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["W", "b"]);
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut rng = DetRng::new(2);
        let mut c = Conv2d::new("c1", 1, 2, 3, 1, 0, &mut rng);
        let x = Tensor::full(&[1, 1, 5, 5], 1.0);
        let y = c.forward(x.clone(), true);
        let d = Tensor::full(y.shape(), 1.0);
        let _ = c.backward(d);
        let g1: f32 = c.params_mut()[0].grad.data().iter().sum();
        // Second pass accumulates on top.
        let y = c.forward(x, true);
        let d = Tensor::full(y.shape(), 1.0);
        let _ = c.backward(d);
        let g2: f32 = c.params_mut()[0].grad.data().iter().sum();
        assert!((g2 - 2.0 * g1).abs() < 1e-3);
        c.zero_grad();
        let g3: f32 = c.params_mut()[0].grad.data().iter().sum();
        assert_eq!(g3, 0.0);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = DetRng::new(3);
        let mut c = Conv2d::new("c", 1, 1, 3, 1, 1, &mut rng);
        c.backward(Tensor::zeros(&[1, 1, 4, 4]));
    }
}
