//! ReLU activation.

use super::Layer;
use sefi_tensor::Tensor;

/// Rectified linear unit: `max(0, x)` elementwise.
pub struct ReLU {
    name: String,
    mask: Vec<bool>,
}

impl ReLU {
    /// A named ReLU.
    pub fn new(name: &str) -> Self {
        ReLU { name: name.to_string(), mask: Vec::new() }
    }
}

impl Layer for ReLU {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, mut x: Tensor, _train: bool) -> Tensor {
        // resize + zip instead of clear + push: the mask buffer is reused
        // across steps and the loop has no per-element capacity check, so
        // it vectorizes.
        self.mask.clear();
        self.mask.resize(x.len(), false);
        for (v, m) in x.data_mut().iter_mut().zip(&mut self.mask) {
            let pass = *v > 0.0;
            *m = pass;
            if !pass {
                *v = 0.0;
            }
        }
        x
    }

    fn backward(&mut self, mut dout: Tensor) -> Tensor {
        assert_eq!(dout.len(), self.mask.len(), "backward before forward");
        for (g, &pass) in dout.data_mut().iter_mut().zip(&self.mask) {
            if !pass {
                *g = 0.0;
            }
        }
        dout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_negative_and_routes_gradient() {
        let mut r = ReLU::new("r");
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], &[4]);
        let y = r.forward(x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let d = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[4]);
        let dx = r.backward(d);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn nan_inputs_do_not_pass() {
        // NaN > 0.0 is false, so a corrupted activation is blocked rather
        // than propagated by ReLU (propagation happens through other paths).
        let mut r = ReLU::new("r");
        let x = Tensor::from_vec(vec![f32::NAN, 1.0], &[2]);
        let y = r.forward(x, true);
        assert_eq!(y.data()[0], 0.0);
        assert_eq!(y.data()[1], 1.0);
    }
}
