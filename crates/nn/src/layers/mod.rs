//! Layers: forward/backward pairs with named parameters.

mod activation;
mod batchnorm;
mod conv;
mod dense;
mod flatten;
mod pool;
mod residual;

pub use activation::ReLU;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};
pub use residual::Residual;

use sefi_tensor::Tensor;

/// A mutable view of one trainable parameter: its qualified name (relative
/// to the layer), current value, and gradient accumulator.
pub struct ParamRefMut<'a> {
    /// Parameter name within the layer (e.g. `"W"`, `"b"`, `"gamma"`), or a
    /// slash-joined path for composite layers.
    pub name: String,
    /// The weight tensor.
    pub value: &'a mut Tensor,
    /// The gradient accumulated by the last backward pass.
    pub grad: &'a mut Tensor,
}

/// A mutable view of one non-trainable state tensor (e.g. batch-norm
/// running statistics). Included in checkpoints but not touched by the
/// optimizer.
pub struct StateRefMut<'a> {
    /// State name within the layer.
    pub name: String,
    /// The state tensor.
    pub value: &'a mut Tensor,
}

/// A differentiable layer.
///
/// `forward` caches whatever `backward` will need; `backward` consumes the
/// upstream gradient and returns the downstream one, accumulating parameter
/// gradients internally. Layers are used strictly in forward-then-backward
/// lockstep by [`crate::Network`].
/// (`Send` so whole networks can move across rayon worker threads — the
/// experiment harness runs independent trials in parallel.)
pub trait Layer: Send {
    /// The layer's instance name (unique within its network).
    fn layer_name(&self) -> &str;

    /// Compute outputs. `train` selects training behaviour (e.g. batch-norm
    /// batch statistics vs. running statistics).
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor;

    /// Propagate gradients. Must be called after `forward`.
    fn backward(&mut self, dout: Tensor) -> Tensor;

    /// Trainable parameters, in deterministic order.
    fn params_mut(&mut self) -> Vec<ParamRefMut<'_>> {
        Vec::new()
    }

    /// Non-trainable state tensors, in deterministic order.
    fn state_mut(&mut self) -> Vec<StateRefMut<'_>> {
        Vec::new()
    }

    /// Reset accumulated gradients to zero.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.grad.data_mut().fill(0.0);
        }
    }

    /// Bytes of kernel workspace this layer retains across steps (scratch
    /// buffers reused instead of reallocated — see `sefi_tensor`'s
    /// `ConvWorkspace`). Composite layers sum their children.
    fn workspace_bytes(&self) -> usize {
        0
    }
}
