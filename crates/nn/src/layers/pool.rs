//! Pooling layers.

use super::Layer;
use sefi_tensor::{avgpool2d, avgpool2d_backward, maxpool2d, maxpool2d_backward, PoolSpec, Tensor};

/// Max pooling.
pub struct MaxPool2d {
    name: String,
    spec: PoolSpec,
    arg: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Window `size`, step `stride`.
    pub fn new(name: &str, size: usize, stride: usize) -> Self {
        MaxPool2d {
            name: name.to_string(),
            spec: PoolSpec { size, stride },
            arg: Vec::new(),
            input_shape: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        self.input_shape = x.shape().to_vec();
        let (out, arg) = maxpool2d(&x, self.spec);
        self.arg = arg;
        out
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        assert!(!self.input_shape.is_empty(), "backward before forward");
        maxpool2d_backward(&dout, &self.arg, &self.input_shape)
    }
}

/// Average pooling. With `size == stride == spatial extent` this is the
/// global average pooling that closes ResNet50.
pub struct AvgPool2d {
    name: String,
    spec: PoolSpec,
    input_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Window `size`, step `stride`.
    pub fn new(name: &str, size: usize, stride: usize) -> Self {
        AvgPool2d {
            name: name.to_string(),
            spec: PoolSpec { size, stride },
            input_shape: Vec::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        self.input_shape = x.shape().to_vec();
        avgpool2d(&x, self.spec)
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        assert!(!self.input_shape.is_empty(), "backward before forward");
        avgpool2d_backward(&dout, &self.input_shape, self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut p = MaxPool2d::new("p", 2, 2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        let dx = p.backward(Tensor::full(&[1, 1, 2, 2], 1.0));
        assert_eq!(dx.sum(), 4.0);
        assert_eq!(dx.at(&[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn avgpool_gradient_is_uniform() {
        let mut p = AvgPool2d::new("g", 4, 4);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.data()[0] - 7.5).abs() < 1e-6);
        let dx = p.backward(Tensor::full(&[1, 1, 1, 1], 16.0));
        assert!(dx.data().iter().all(|&g| (g - 1.0).abs() < 1e-6));
    }
}
