//! Pooling layers.

use super::Layer;
use sefi_tensor::{avgpool2d, maxpool2d, maxpool2d_backward, PoolSpec, Tensor};

/// Max pooling.
pub struct MaxPool2d {
    name: String,
    spec: PoolSpec,
    arg: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Window `size`, step `stride`.
    pub fn new(name: &str, size: usize, stride: usize) -> Self {
        MaxPool2d {
            name: name.to_string(),
            spec: PoolSpec { size, stride },
            arg: Vec::new(),
            input_shape: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        self.input_shape = x.shape().to_vec();
        let (out, arg) = maxpool2d(&x, self.spec);
        self.arg = arg;
        out
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        assert!(!self.input_shape.is_empty(), "backward before forward");
        maxpool2d_backward(&dout, &self.arg, &self.input_shape)
    }
}

/// Average pooling. With `size == stride == spatial extent` this is the
/// global average pooling that closes ResNet50.
pub struct AvgPool2d {
    name: String,
    spec: PoolSpec,
    input_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Window `size`, step `stride`.
    pub fn new(name: &str, size: usize, stride: usize) -> Self {
        AvgPool2d {
            name: name.to_string(),
            spec: PoolSpec { size, stride },
            input_shape: Vec::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: Tensor, _train: bool) -> Tensor {
        self.input_shape = x.shape().to_vec();
        avgpool2d(&x, self.spec)
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        assert!(!self.input_shape.is_empty(), "backward before forward");
        // Spread each output gradient uniformly over its window.
        let [n, c, h, w] =
            [self.input_shape[0], self.input_shape[1], self.input_shape[2], self.input_shape[3]];
        let oh = dout.shape()[2];
        let ow = dout.shape()[3];
        let norm = 1.0 / (self.spec.size * self.spec.size) as f32;
        let mut dx = Tensor::zeros(&self.input_shape);
        let d = dout.data();
        let out = dx.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = d[((ni * c + ci) * oh + oy) * ow + ox] * norm;
                        for ky in 0..self.spec.size {
                            for kx in 0..self.spec.size {
                                out[base
                                    + (oy * self.spec.stride + ky) * w
                                    + (ox * self.spec.stride + kx)] += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut p = MaxPool2d::new("p", 2, 2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        let dx = p.backward(Tensor::full(&[1, 1, 2, 2], 1.0));
        assert_eq!(dx.sum(), 4.0);
        assert_eq!(dx.at(&[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn avgpool_gradient_is_uniform() {
        let mut p = AvgPool2d::new("g", 4, 4);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.data()[0] - 7.5).abs() < 1e-6);
        let dx = p.backward(Tensor::full(&[1, 1, 1, 1], 16.0));
        assert!(dx.data().iter().all(|&g| (g - 1.0).abs() < 1e-6));
    }
}
