//! Softmax cross-entropy loss.

use sefi_tensor::Tensor;

/// Compute mean cross-entropy over a batch of logits `[n, classes]` and
/// return `(loss, dlogits)` where `dlogits` is the gradient of the mean
/// loss w.r.t. the logits.
///
/// Numerically stabilized by subtracting the row max before exponentiation.
/// If a logit row contains NaN/Inf the loss will be non-finite — callers
/// (the trainer) use that as the N-EV collapse signal rather than this
/// function masking it.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[u8]) -> (f64, Tensor) {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "logits must be [n, classes]");
    let (n, c) = (s[0], s[1]);
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    let src = logits.data();
    let mut dlogits = Tensor::zeros(&[n, c]);
    let d = dlogits.data_mut();
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;

    for (i, &label) in labels.iter().enumerate() {
        let label = label as usize;
        assert!(label < c, "label {label} out of range for {c} classes");
        let row = &src[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &v in row {
            denom += ((v - max) as f64).exp();
        }
        let log_denom = denom.ln();
        loss -= (row[label] - max) as f64 - log_denom;
        for (j, &v) in row.iter().enumerate() {
            let p = (((v - max) as f64).exp() / denom) as f32;
            d[i * c + j] = (p - if j == label { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    (loss / n as f64, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let labels = [0u8, 3, 7, 9];
        let (loss, _) = softmax_cross_entropy(&logits, &labels);
        assert!((loss - (10.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn perfect_prediction_has_tiny_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[1] = 100.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.2, 0.9, -1.0], &[2, 3]);
        let labels = [2u8, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for flat in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[flat] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[flat] -= eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels);
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels);
            let num = (loss_p - loss_m) / (2.0 * eps as f64);
            let ana = grad.data()[flat] as f64;
            assert!((num - ana).abs() < 1e-5, "grad[{flat}]: {num} vs {ana}");
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0], &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        for row in grad.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn large_logits_do_not_overflow() {
        let logits = Tensor::from_vec(vec![1e4, -1e4, 0.0], &[1, 3]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn nan_logits_surface_as_nan_loss() {
        let logits = Tensor::from_vec(vec![f32::NAN, 0.0], &[1, 2]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_nan());
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let logits = Tensor::zeros(&[1, 3]);
        softmax_cross_entropy(&logits, &[3]);
    }
}
