//! Property-based tests for the activation-envelope guards.
//!
//! Two properties over randomized networks, corpora, and slack:
//! a clean model never trips envelopes calibrated on its own corpus
//! (under any re-batching — per-sample activations are batch-composition
//! invariant under the lane-stable kernel contract), and one forced
//! exponent-MSB flip of a live first-conv weight trips within one batch.

use proptest::prelude::*;
use sefi_nn::{Conv2d, Dense, Flatten, MaxPool2d, Network, ReLU};
use sefi_rng::DetRng;
use sefi_tensor::Tensor;

fn net(seed: u64, ch: usize) -> Network {
    let mut rng = DetRng::new(seed);
    Network::new(vec![
        Box::new(Conv2d::new("conv1", 3, ch, 3, 1, 1, &mut rng)),
        Box::new(ReLU::new("relu1")),
        Box::new(MaxPool2d::new("pool1", 2, 2)),
        Box::new(Flatten::new("flat")),
        Box::new(Dense::new("fc", ch * 4 * 4, 10, &mut rng)),
    ])
}

fn corpus(seed: u64, batches: usize, batch: usize) -> Vec<Tensor> {
    let mut rng = DetRng::new(seed).substream("corpus");
    (0..batches)
        .map(|_| {
            let mut data = vec![0.0f32; batch * 3 * 8 * 8];
            rng.fill_uniform(&mut data, -1.0, 1.0);
            Tensor::from_vec(data, &[batch, 3, 8, 8])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn clean_forward_never_trips_any_rebatching(
        seed in 0u64..1_000_000,
        ch in 3usize..6,
        slack in 0.0f32..1.0,
    ) {
        let mut n = net(seed, ch);
        let batches = corpus(seed, 3, 4);
        let env = n.calibrate_envelopes(&batches, slack, "prop", "f32");
        let il = 3 * 8 * 8;
        for b in &batches {
            prop_assert!(n.forward_guarded(b.clone(), &env).is_ok(), "full batch tripped");
            for s in 0..4 {
                let one =
                    Tensor::from_vec(b.data()[s * il..(s + 1) * il].to_vec(), &[1, 3, 8, 8]);
                prop_assert!(n.forward_guarded(one, &env).is_ok(), "re-batched sample tripped");
            }
        }
    }

    #[test]
    fn exponent_msb_flip_trips_within_one_batch(
        seed in 0u64..1_000_000,
        pick in 0usize..1024,
        slack in 0.0f32..1.0,
    ) {
        let mut n = net(seed, 4);
        let batches = corpus(seed, 3, 4);
        let env = n.calibrate_envelopes(&batches, slack, "prop", "f32");
        {
            let mut params = n.params_mut();
            let pi = (0..params.len()).position(|i| params[i].name == "conv1/W").unwrap();
            let w = params[pi].value.data_mut();
            // Mid-range magnitude: exponent ≤ 126, so the flip explodes.
            let candidates: Vec<usize> =
                (0..w.len()).filter(|&i| (0.01..1.0).contains(&w[i].abs())).collect();
            prop_assume!(!candidates.is_empty());
            let i = candidates[pick % candidates.len()];
            w[i] = f32::from_bits(w[i].to_bits() ^ (1 << 30));
        }
        prop_assert!(
            n.forward_guarded(batches[0].clone(), &env).is_err(),
            "flip served a full batch untripped"
        );
    }
}
