//! Activation-guard contract across kernel generations.
//!
//! The envelopes are calibrated once and must hold at every
//! `SEFI_KERNELS` mode: a clean forward never trips (the lane-stable
//! contract makes activations bit-identical across modes, so a mode
//! switch cannot manufacture a false positive), and an exponent-MSB
//! weight flip trips within one batch at every mode. Randomized over
//! nets and corpora with `DetRng` rather than proptest so the mode loop
//! stays sequential — the kernel mode is process-global, hence this
//! test's own binary.

use sefi_nn::{Conv2d, Dense, Flatten, MaxPool2d, Network, ReLU};
use sefi_rng::DetRng;
use sefi_tensor::{set_kernel_mode, KernelMode, Tensor};

fn random_net(rng: &mut DetRng) -> Network {
    let ch = 3 + rng.index(4); // 3..=6 conv channels
    let hidden = 8 + rng.index(17); // 8..=24 dense width
    let mut r = rng.substream("init");
    Network::new(vec![
        Box::new(Conv2d::new("conv1", 3, ch, 3, 1, 1, &mut r)),
        Box::new(ReLU::new("relu1")),
        Box::new(MaxPool2d::new("pool1", 2, 2)),
        Box::new(Flatten::new("flat")),
        Box::new(Dense::new("fc1", ch * 4 * 4, hidden, &mut r)),
        Box::new(ReLU::new("relu2")),
        Box::new(Dense::new("fc2", hidden, 10, &mut r)),
    ])
}

fn random_corpus(rng: &mut DetRng, batches: usize, batch: usize) -> Vec<Tensor> {
    (0..batches)
        .map(|_| {
            let mut data = vec![0.0f32; batch * 3 * 8 * 8];
            rng.fill_uniform(&mut data, -1.0, 1.0);
            Tensor::from_vec(data, &[batch, 3, 8, 8])
        })
        .collect()
}

/// Flip the exponent MSB of a random first-conv weight element with
/// magnitude in [0.01, 1): its exponent is ≤ 126, so the flip lands at
/// ≥ 2^122 — unmissable by any calibrated envelope. The first conv is
/// chosen because its inputs are raw pixels (never identically zero):
/// a flip deeper in the net can hide behind a dead ReLU unit, which is
/// exactly the masking the paper documents, not a guard failure.
fn flip_a_weight(net: &mut Network, rng: &mut DetRng) {
    let mut params = net.params_mut();
    let pi = (0..params.len()).position(|i| params[i].name == "conv1/W").unwrap();
    let w = params[pi].value.data_mut();
    let candidates: Vec<usize> =
        (0..w.len()).filter(|&i| (0.01..1.0).contains(&w[i].abs())).collect();
    let i = candidates[rng.index(candidates.len())];
    w[i] = f32::from_bits(w[i].to_bits() ^ (1 << 30));
}

#[test]
fn guard_contract_holds_at_every_kernel_mode() {
    for (mode, name) in
        [(KernelMode::Simd, "simd"), (KernelMode::Tiled, "tiled"), (KernelMode::Naive, "naive")]
    {
        set_kernel_mode(mode);
        for case in 0..6u64 {
            let mut rng = DetRng::new(0x6A7D_0000 + case);
            let mut net = random_net(&mut rng);
            let corpus = random_corpus(&mut rng.substream("data"), 4, 4);
            let env = net.calibrate_envelopes(&corpus, 0.25, "rand", "f32");

            // Clean forwards never trip — including single-sample
            // re-batchings of the calibration corpus.
            for b in &corpus {
                net.forward_guarded(b.clone(), &env)
                    .unwrap_or_else(|t| panic!("[{name}/{case}] clean batch tripped: {t}"));
                let il = 3 * 8 * 8;
                for s in 0..4 {
                    let one =
                        Tensor::from_vec(b.data()[s * il..(s + 1) * il].to_vec(), &[1, 3, 8, 8]);
                    net.forward_guarded(one, &env)
                        .unwrap_or_else(|t| panic!("[{name}/{case}] clean sample tripped: {t}"));
                }
            }

            // One exponent-MSB flip trips within one batch.
            flip_a_weight(&mut net, &mut rng.substream("flip"));
            assert!(
                net.forward_guarded(corpus[0].clone(), &env).is_err(),
                "[{name}/{case}] exponent-MSB flip served a full batch untripped"
            );
        }
    }
    set_kernel_mode(KernelMode::Simd);
}
