//! Property-based tests for the training framework's invariants.

use proptest::prelude::*;
use sefi_nn::{softmax_cross_entropy, Conv2d, Dense, Flatten, MaxPool2d, Network, ReLU, StateDict};
use sefi_rng::DetRng;
use sefi_tensor::Tensor;

fn net(seed: u64) -> Network {
    let mut rng = DetRng::new(seed);
    Network::new(vec![
        Box::new(Conv2d::new("conv1", 2, 3, 3, 1, 1, &mut rng)),
        Box::new(ReLU::new("relu1")),
        Box::new(MaxPool2d::new("pool1", 2, 2)),
        Box::new(Flatten::new("flat")),
        Box::new(Dense::new("fc", 3 * 4 * 4, 5, &mut rng)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn loss_is_nonnegative_and_finite_for_finite_logits(
        logits_data in prop::collection::vec(-50.0f32..50.0, 3 * 4),
        labels in prop::collection::vec(0u8..4, 3),
    ) {
        let logits = Tensor::from_vec(logits_data, &[3, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0, "cross entropy cannot be negative: {loss}");
        prop_assert!(loss.is_finite());
        prop_assert!(!grad.has_non_finite());
        // Gradient rows sum to ~0 (softmax simplex tangent).
        for row in grad.data().chunks(4) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn loss_gradient_points_downhill(
        logits_data in prop::collection::vec(-3.0f32..3.0, 2 * 5),
        labels in prop::collection::vec(0u8..5, 2),
    ) {
        let logits = Tensor::from_vec(logits_data, &[2, 5]);
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        // One small step against the gradient must not increase the loss.
        let stepped = Tensor::from_vec(
            logits.data().iter().zip(grad.data()).map(|(&l, &g)| l - 0.01 * g).collect(),
            logits.shape(),
        );
        let (loss2, _) = softmax_cross_entropy(&stepped, &labels);
        prop_assert!(loss2 <= loss + 1e-9, "{loss} -> {loss2}");
    }

    #[test]
    fn forward_is_deterministic_and_seed_sensitive(
        data in prop::collection::vec(-1.0f32..1.0, 2 * 2 * 8 * 8),
        seed in 0u64..1000,
    ) {
        let x = Tensor::from_vec(data, &[2, 2, 8, 8]);
        let mut a = net(seed);
        let mut b = net(seed);
        let ya = a.forward(x.clone(), false);
        let yb = b.forward(x.clone(), false);
        prop_assert_eq!(ya.data(), yb.data());
        let mut c = net(seed + 1);
        let yc = c.forward(x, false);
        prop_assert_ne!(ya.data(), yc.data());
    }

    #[test]
    fn state_dict_roundtrip_is_identity(seed in 0u64..500) {
        let mut a = net(seed);
        let sd = a.state_dict();
        let mut b = net(seed ^ 0xDEAD);
        b.load_state_dict(&sd).unwrap();
        prop_assert_eq!(a.state_dict(), b.state_dict());
    }

    #[test]
    fn gradient_descent_on_sum_loss_reduces_sum(
        data in prop::collection::vec(0.1f32..1.0, 2 * 8 * 8),
        seed in 0u64..100,
    ) {
        // Minimizing sum(output) by one SGD step must reduce sum(output)
        // for a small enough learning rate (first-order sanity of the
        // whole backward pass composed across layer types).
        let x = Tensor::from_vec(data, &[1, 2, 8, 8]);
        let mut n = net(seed);
        let before = n.forward(x.clone(), true).sum();
        let out_shape = [1usize, 5];
        n.backward(Tensor::full(&out_shape, 1.0));
        let mut opt = sefi_nn::Sgd::new(sefi_nn::SgdConfig {
            lr: 1e-4,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.step(&mut n.params_mut());
        let after = n.forward(x, true).sum();
        prop_assert!(after <= before + 1e-4, "{before} -> {after}");
    }

    #[test]
    fn partial_state_dicts_are_always_rejected(seed in 0u64..100, drop_idx in 0usize..4) {
        let mut n = net(seed);
        let full = n.state_dict();
        prop_assume!(drop_idx < full.len());
        let mut partial = StateDict::new();
        for (i, e) in full.entries().iter().enumerate() {
            if i != drop_idx {
                partial.push(e.path.clone(), e.tensor.clone(), e.trainable);
            }
        }
        prop_assert!(n.load_state_dict(&partial).is_err());
    }
}
