//! Steady-state training must not grow any kernel workspace: after the
//! first step has sized every buffer (im2col columns, GEMM pack panels,
//! gradient scratch), subsequent steps reuse them verbatim. This is the
//! "zero per-step kernel allocations" guarantee of the blocked kernel
//! generations (simd and tiled), enforced via the global growth counter.
//!
//! Kept in its own integration-test binary: the counter is process-global,
//! and unrelated tests running concurrently would make it drift.

use sefi_nn::{softmax_cross_entropy, Conv2d, Dense, Flatten, MaxPool2d, Network, ReLU};
use sefi_rng::DetRng;
use sefi_tensor::{set_kernel_mode, workspace_alloc_events, KernelMode, Tensor};

#[test]
fn training_steps_allocate_no_workspace_after_warmup() {
    set_kernel_mode(KernelMode::Simd);
    let mut rng = DetRng::new(7);
    let mut net = Network::new(vec![
        Box::new(Conv2d::new("conv1", 3, 4, 3, 1, 1, &mut rng).skip_input_grad()),
        Box::new(ReLU::new("relu1")),
        Box::new(MaxPool2d::new("pool1", 2, 2)),
        Box::new(Conv2d::new("conv2", 4, 6, 3, 1, 1, &mut rng)),
        Box::new(ReLU::new("relu2")),
        Box::new(Flatten::new("flat")),
        Box::new(Dense::new("fc", 6 * 8 * 8, 10, &mut rng)),
    ]);
    let x = Tensor::from_vec(
        (0..4 * 3 * 16 * 16).map(|i| ((i * 37 % 100) as f32 - 50.0) / 50.0).collect(),
        &[4, 3, 16, 16],
    );
    let labels: Vec<u8> = vec![0, 3, 7, 9];

    let step = |net: &mut Network| {
        let logits = net.forward(x.clone(), true);
        let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
        net.backward(dlogits);
        net.zero_grad();
    };

    // Warm-up: first step sizes every buffer for this geometry.
    step(&mut net);
    assert!(net.workspace_bytes() > 0, "conv layers should retain workspace");
    let retained = net.workspace_bytes();

    let settled = workspace_alloc_events();
    for _ in 0..5 {
        step(&mut net);
    }
    assert_eq!(
        workspace_alloc_events(),
        settled,
        "steady-state steps must not grow any kernel workspace"
    );
    assert_eq!(net.workspace_bytes(), retained, "retained bytes must be stable");
}
