//! Property-based tests for the synthetic dataset.

use proptest::prelude::*;
use sefi_data::{BatchIter, DataConfig, Split, SyntheticCifar10, NUM_CLASSES};

fn any_config() -> impl Strategy<Value = DataConfig> {
    (10usize..80, 5usize..30, prop_oneof![Just(8usize), Just(16)], any::<u64>()).prop_map(
        |(train, test, image_size, seed)| DataConfig { train, test, image_size, seed, noise: 0.3 },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_a_pure_function_of_config(cfg in any_config()) {
        let a = SyntheticCifar10::generate(cfg.clone());
        let b = SyntheticCifar10::generate(cfg);
        prop_assert_eq!(a.labels(Split::Train), b.labels(Split::Train));
        for i in 0..a.len(Split::Train) {
            prop_assert_eq!(a.image(Split::Train, i), b.image(Split::Train, i));
        }
    }

    #[test]
    fn labels_in_range_and_pixels_finite(cfg in any_config()) {
        let d = SyntheticCifar10::generate(cfg);
        for split in [Split::Train, Split::Test] {
            for i in 0..d.len(split) {
                prop_assert!(d.label(split, i) < NUM_CLASSES as u8);
                prop_assert!(d.image(split, i).iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn every_epoch_is_a_permutation(cfg in any_config(), epoch in 0usize..5, bs in 1usize..16) {
        let d = SyntheticCifar10::generate(cfg);
        let total: usize = BatchIter::new(&d, Split::Train, bs, epoch).map(|b| b.labels.len()).sum();
        prop_assert_eq!(total, d.len(Split::Train));
    }

    #[test]
    fn batches_never_exceed_requested_size(cfg in any_config(), bs in 1usize..16) {
        let d = SyntheticCifar10::generate(cfg);
        for b in BatchIter::new(&d, Split::Train, bs, 0) {
            prop_assert!(b.labels.len() <= bs);
            prop_assert_eq!(b.images.shape()[0], b.labels.len());
        }
    }
}
