//! Class-conditional image synthesis.

use sefi_rng::DetRng;
use sefi_tensor::Tensor;

/// CIFAR-10 has ten classes; the synthetic task keeps that.
pub const NUM_CLASSES: usize = 10;

/// Which split an image belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training images.
    Train,
    /// Held-out evaluation images.
    Test,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct DataConfig {
    /// Number of training images.
    pub train: usize,
    /// Number of test images.
    pub test: usize,
    /// Spatial edge length (CIFAR-10 is 32; experiments may scale down).
    pub image_size: usize,
    /// Master seed; same seed → bit-identical dataset.
    pub seed: u64,
    /// Gaussian pixel-noise standard deviation (0.25 default: hard enough
    /// that accuracy grows over epochs instead of saturating immediately).
    pub noise: f64,
}

impl Default for DataConfig {
    fn default() -> Self {
        DataConfig { train: 2000, test: 500, image_size: 32, seed: 0xC1_FA10, noise: 0.25 }
    }
}

/// The generated dataset: flat image storage plus labels, both splits.
#[derive(Debug, Clone)]
pub struct SyntheticCifar10 {
    config: DataConfig,
    train_images: Vec<f32>,
    train_labels: Vec<u8>,
    test_images: Vec<f32>,
    test_labels: Vec<u8>,
}

impl SyntheticCifar10 {
    /// Pixels per image (`3 * size * size`).
    pub fn image_len(&self) -> usize {
        3 * self.config.image_size * self.config.image_size
    }

    /// Generate the dataset described by `config`.
    pub fn generate(config: DataConfig) -> Self {
        let root = DetRng::new(config.seed);
        let (train_images, train_labels) =
            gen_split(&config, &root.substream("train"), config.train);
        let (test_images, test_labels) = gen_split(&config, &root.substream("test"), config.test);
        SyntheticCifar10 { config, train_images, train_labels, test_images, test_labels }
    }

    /// The generation parameters.
    pub fn config(&self) -> &DataConfig {
        &self.config
    }

    /// Number of images in a split.
    pub fn len(&self, split: Split) -> usize {
        match split {
            Split::Train => self.train_labels.len(),
            Split::Test => self.test_labels.len(),
        }
    }

    /// True when the split holds no images.
    pub fn is_empty(&self, split: Split) -> bool {
        self.len(split) == 0
    }

    /// Label of image `idx` in a split.
    pub fn label(&self, split: Split, idx: usize) -> u8 {
        match split {
            Split::Train => self.train_labels[idx],
            Split::Test => self.test_labels[idx],
        }
    }

    /// All labels of a split.
    pub fn labels(&self, split: Split) -> &[u8] {
        match split {
            Split::Train => &self.train_labels,
            Split::Test => &self.test_labels,
        }
    }

    /// Raw pixels of image `idx` (length [`Self::image_len`], CHW order,
    /// values roughly in `[-1, 1]`).
    pub fn image(&self, split: Split, idx: usize) -> &[f32] {
        let il = self.image_len();
        let store = match split {
            Split::Train => &self.train_images,
            Split::Test => &self.test_images,
        };
        &store[idx * il..(idx + 1) * il]
    }

    /// Gather images `indices` into a `[n, 3, s, s]` batch tensor plus labels.
    pub fn gather(&self, split: Split, indices: &[usize]) -> (Tensor, Vec<u8>) {
        let il = self.image_len();
        let s = self.config.image_size;
        let mut data = Vec::with_capacity(indices.len() * il);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.image(split, i));
            labels.push(self.label(split, i));
        }
        (Tensor::from_vec(data, &[indices.len(), 3, s, s]), labels)
    }

    /// The first `n` test images as one batch — the paper's Table VIII
    /// protocol evaluates prediction sets of 1 000 images.
    pub fn prediction_set(&self, n: usize) -> (Tensor, Vec<u8>) {
        let n = n.min(self.len(Split::Test));
        let indices: Vec<usize> = (0..n).collect();
        self.gather(Split::Test, &indices)
    }
}

/// Deterministic per-class texture parameters, derived (not sampled) so any
/// split/config agrees on what a class looks like.
struct ClassPattern {
    freq_x: f64,
    freq_y: f64,
    phase: [f64; 3],
    patch_x: usize,
    patch_y: usize,
    patch_color: [f32; 3],
}

fn class_pattern(class: usize, size: usize) -> ClassPattern {
    let c = class as f64;
    ClassPattern {
        freq_x: 1.0 + (c * 0.7) % 4.0,
        freq_y: 1.0 + (c * 1.3) % 4.0,
        phase: [c * 0.61, c * 1.17, c * 1.83],
        patch_x: (class * 7) % (size / 2),
        patch_y: (class * 3) % (size / 2),
        patch_color: [
            if class.is_multiple_of(2) { 0.8 } else { -0.8 },
            if class.is_multiple_of(3) { 0.8 } else { -0.4 },
            if class.is_multiple_of(5) { 0.6 } else { -0.6 },
        ],
    }
}

fn gen_split(config: &DataConfig, rng: &DetRng, count: usize) -> (Vec<f32>, Vec<u8>) {
    let s = config.image_size;
    let il = 3 * s * s;
    let mut images = vec![0.0f32; count * il];
    let mut labels = vec![0u8; count];
    let mut label_rng = rng.substream("labels");
    let mut noise_rng = rng.substream("noise");
    let patch = (s / 4).max(2);

    for (i, label) in labels.iter_mut().enumerate() {
        let class = label_rng.index(NUM_CLASSES);
        *label = class as u8;
        let p = class_pattern(class, s);
        let img = &mut images[i * il..(i + 1) * il];
        for ch in 0..3 {
            for y in 0..s {
                for x in 0..s {
                    let fx = x as f64 / s as f64;
                    let fy = y as f64 / s as f64;
                    let mut v = 0.5
                        * ((std::f64::consts::TAU * (p.freq_x * fx + p.freq_y * fy) + p.phase[ch])
                            .sin());
                    if x >= p.patch_x
                        && x < p.patch_x + patch
                        && y >= p.patch_y
                        && y < p.patch_y + patch
                    {
                        v += p.patch_color[ch] as f64;
                    }
                    v += noise_rng.normal() * config.noise;
                    img[(ch * s + y) * s + x] = v.clamp(-2.0, 2.0) as f32;
                }
            }
        }
    }
    (images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DataConfig {
        DataConfig { train: 60, test: 30, image_size: 16, seed: 1, noise: 0.2 }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCifar10::generate(small());
        let b = SyntheticCifar10::generate(small());
        assert_eq!(a.labels(Split::Train), b.labels(Split::Train));
        assert_eq!(a.image(Split::Train, 5), b.image(Split::Train, 5));
        assert_eq!(a.image(Split::Test, 3), b.image(Split::Test, 3));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCifar10::generate(small());
        let mut cfg = small();
        cfg.seed = 2;
        let b = SyntheticCifar10::generate(cfg);
        assert_ne!(a.image(Split::Train, 0), b.image(Split::Train, 0));
    }

    #[test]
    fn splits_are_distinct() {
        let d = SyntheticCifar10::generate(small());
        assert_ne!(d.image(Split::Train, 0), d.image(Split::Test, 0));
    }

    #[test]
    fn shapes_and_ranges() {
        let d = SyntheticCifar10::generate(small());
        assert_eq!(d.len(Split::Train), 60);
        assert_eq!(d.len(Split::Test), 30);
        assert_eq!(d.image_len(), 3 * 16 * 16);
        for i in 0..d.len(Split::Train) {
            assert!(d.label(Split::Train, i) < NUM_CLASSES as u8);
            assert!(d.image(Split::Train, i).iter().all(|v| v.is_finite() && v.abs() <= 2.0));
        }
    }

    #[test]
    fn all_classes_appear() {
        let d = SyntheticCifar10::generate(DataConfig { train: 500, ..small() });
        let mut seen = [false; NUM_CLASSES];
        for &l in d.labels(Split::Train) {
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "labels missing: {seen:?}");
    }

    #[test]
    fn classes_are_separable_by_template_matching() {
        // A nearest-class-mean classifier on raw pixels must beat chance by
        // a wide margin, otherwise no network can learn the task.
        let d = SyntheticCifar10::generate(DataConfig { train: 400, test: 100, ..small() });
        let il = d.image_len();
        let mut means = vec![vec![0.0f64; il]; NUM_CLASSES];
        let mut counts = [0usize; NUM_CLASSES];
        for i in 0..d.len(Split::Train) {
            let c = d.label(Split::Train, i) as usize;
            counts[c] += 1;
            for (m, &v) in means[c].iter_mut().zip(d.image(Split::Train, i)) {
                *m += v as f64;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            if c > 0 {
                for v in m.iter_mut() {
                    *v /= c as f64;
                }
            }
        }
        let mut correct = 0;
        for i in 0..d.len(Split::Test) {
            let img = d.image(Split::Test, i);
            let best = (0..NUM_CLASSES)
                .min_by(|&a, &b| {
                    let da: f64 =
                        means[a].iter().zip(img).map(|(&m, &v)| (m - v as f64).powi(2)).sum();
                    let db: f64 =
                        means[b].iter().zip(img).map(|(&m, &v)| (m - v as f64).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == d.label(Split::Test, i) as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len(Split::Test) as f64;
        assert!(acc > 0.5, "template accuracy only {acc}");
    }

    #[test]
    fn gather_and_prediction_set() {
        let d = SyntheticCifar10::generate(small());
        let (batch, labels) = d.gather(Split::Train, &[3, 1, 4]);
        assert_eq!(batch.shape(), &[3, 3, 16, 16]);
        assert_eq!(labels.len(), 3);
        assert_eq!(labels[0], d.label(Split::Train, 3));
        let (pred, pl) = d.prediction_set(1000); // clamps to test size
        assert_eq!(pred.shape()[0], 30);
        assert_eq!(pl.len(), 30);
    }
}
