//! Deterministic mini-batch iteration.

use crate::generator::{Split, SyntheticCifar10};
use sefi_rng::DetRng;
use sefi_tensor::Tensor;

/// One mini-batch: images `[n, 3, s, s]` and labels.
#[derive(Debug)]
pub struct Batch {
    /// Image tensor.
    pub images: Tensor,
    /// Class labels, one per image.
    pub labels: Vec<u8>,
}

/// Iterates a split in shuffled mini-batches.
///
/// The shuffle is a pure function of (dataset seed, epoch), so resuming a
/// training at epoch `e` replays exactly the batches the uninterrupted run
/// would have seen — a prerequisite for the paper's checkpoint-restart
/// comparisons.
pub struct BatchIter<'a> {
    data: &'a SyntheticCifar10,
    split: Split,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    /// Keep a trailing short batch instead of dropping it.
    keep_partial: bool,
}

impl<'a> BatchIter<'a> {
    /// Shuffled batches for one epoch.
    pub fn new(data: &'a SyntheticCifar10, split: Split, batch_size: usize, epoch: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut rng = DetRng::new(data.config().seed)
            .substream("batch-order")
            .substream(&format!("epoch-{epoch}"));
        let order = rng.permutation(data.len(split));
        BatchIter { data, split, order, batch_size, cursor: 0, keep_partial: true }
    }

    /// Sequential (unshuffled) batches — used for evaluation.
    pub fn sequential(data: &'a SyntheticCifar10, split: Split, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        BatchIter {
            data,
            split,
            order: (0..data.len(split)).collect(),
            batch_size,
            cursor: 0,
            keep_partial: true,
        }
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        if self.keep_partial {
            self.order.len().div_ceil(self.batch_size)
        } else {
            self.order.len() / self.batch_size
        }
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        if !self.keep_partial && end - self.cursor < self.batch_size {
            return None;
        }
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        let (images, labels) = self.data.gather(self.split, idx);
        Some(Batch { images, labels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DataConfig;

    fn data() -> SyntheticCifar10 {
        SyntheticCifar10::generate(DataConfig {
            train: 53,
            test: 20,
            image_size: 8,
            seed: 5,
            noise: 0.1,
        })
    }

    #[test]
    fn covers_every_image_exactly_once() {
        let d = data();
        let total: usize = BatchIter::new(&d, Split::Train, 8, 0).map(|b| b.labels.len()).sum();
        assert_eq!(total, 53);
        // Label histogram over the epoch equals the dataset's histogram,
        // confirming a permutation (not sampling with replacement).
        let mut epoch_hist = [0usize; 10];
        for b in BatchIter::new(&d, Split::Train, 8, 0) {
            for &l in &b.labels {
                epoch_hist[l as usize] += 1;
            }
        }
        let mut data_hist = [0usize; 10];
        for &l in d.labels(Split::Train) {
            data_hist[l as usize] += 1;
        }
        assert_eq!(epoch_hist, data_hist);
    }

    #[test]
    fn epoch_order_is_deterministic_but_varies_by_epoch() {
        let d = data();
        let e0a: Vec<u8> = BatchIter::new(&d, Split::Train, 53, 0).next().unwrap().labels;
        let e0b: Vec<u8> = BatchIter::new(&d, Split::Train, 53, 0).next().unwrap().labels;
        let e1: Vec<u8> = BatchIter::new(&d, Split::Train, 53, 1).next().unwrap().labels;
        assert_eq!(e0a, e0b);
        assert_ne!(e0a, e1); // overwhelmingly likely with 53 items
    }

    #[test]
    fn sequential_iteration_is_in_order() {
        let d = data();
        let first = BatchIter::sequential(&d, Split::Test, 7).next().unwrap();
        for (i, &l) in first.labels.iter().enumerate() {
            assert_eq!(l, d.label(Split::Test, i));
        }
    }

    #[test]
    fn num_batches_accounts_for_partial() {
        let d = data();
        let it = BatchIter::new(&d, Split::Train, 10, 0);
        assert_eq!(it.num_batches(), 6); // 53/10 -> 6 with partial
        assert_eq!(it.count(), 6);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_size_panics() {
        let d = data();
        BatchIter::new(&d, Split::Train, 0, 0);
    }
}
