//! Synthetic CIFAR-10-like dataset.
//!
//! The paper trains on CIFAR-10 (Table III: "This dataset is used in all
//! experiments"). We cannot ship the real images, so this crate generates a
//! deterministic, *learnable* 10-class RGB image task with CIFAR-10's tensor
//! shapes (3×32×32, 10 classes): each class is a distinct mixture of
//! oriented sinusoidal gratings and a class-positioned colour patch, overlaid
//! with Gaussian pixel noise. What the study measures — accuracy trajectories
//! of resumed trainings with and without corrupted weights — only needs a
//! classification task of the same shape and difficulty profile, not the
//! actual photographs (DESIGN.md §1).
//!
//! Everything is reproducible: the same [`DataConfig`] always generates
//! bit-identical datasets, and batch iteration shuffles with a per-epoch
//! seed derived from the dataset's seed.

#![deny(missing_docs)]

mod batch;
mod generator;

pub use batch::{Batch, BatchIter};
pub use generator::{DataConfig, Split, SyntheticCifar10, NUM_CLASSES};
