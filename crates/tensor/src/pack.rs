//! Panel packing for the tiled GEMM.
//!
//! Both operands are repacked once per product into contiguous,
//! microkernel-ordered buffers:
//!
//! * `A` (logical `m×k`) becomes row panels of [`MR`] rows laid out
//!   k-major — panel `p` stores `a[p·MR+i, kk]` at `p·k·MR + kk·MR + i` —
//!   so the microkernel reads one contiguous `MR`-vector per k-step.
//! * `B` (logical `k×n`) becomes column panels of [`NR`] columns laid out
//!   k-major — panel `q` stores `b[kk, q·NR+j]` at `q·k·NR + kk·NR + j`.
//!
//! Ragged edges are zero-padded to full panel width, which keeps the
//! microkernel branch-free; padded lanes contribute exact `0.0` products
//! and are never stored back, so bit-exactness is unaffected.
//!
//! Transposed operands (`AᵀB`, `ABᵀ` — the backward-pass products) are
//! handled *here*, by reading the source through swapped strides, instead
//! of materializing a transposed copy the way the old `matmul_at_b` did.

/// Microkernel rows: the A-panel width.
pub(crate) const MR: usize = 8;
/// Microkernel columns: the B-panel width. Two AVX-512 vectors (one
/// 128-byte panel row), four AVX2 vectors.
pub(crate) const NR: usize = 32;
/// k-extent accumulated per C-tile visit (L1 blocking: a `KC×NR` B panel
/// slice is 32 KiB, an `MR×KC` A panel slice 8 KiB).
pub(crate) const KC: usize = 256;
/// Rows per parallel task / L2 block; must be a multiple of `MR`.
pub(crate) const MC: usize = 64;
/// Columns per outer block (L3 streaming bound); must be a multiple of `NR`.
pub(crate) const NC: usize = 2048;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");
// Pack buffers are 64-byte aligned (workspace::AVec); a B panel row is
// NR*4 bytes, so every k-step row stays vector-aligned only if that is a
// whole number of 64-byte vectors.
const _: () = assert!((NR * 4).is_multiple_of(64), "B panel rows must preserve 64-byte alignment");

/// Packed length of an `m×k` A operand.
pub(crate) fn packed_a_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Packed length of a `k×n` B operand.
pub(crate) fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// Pack logical `A: [m, k]` into MR-row panels. `trans` means the source
/// buffer stores `Aᵀ` (i.e. it is `[k, m]` row-major).
pub(crate) fn pack_a(dst: &mut [f32], a: &[f32], m: usize, k: usize, trans: bool) {
    debug_assert!(dst.len() >= packed_a_len(m, k));
    debug_assert_eq!(a.len(), m * k);
    for p in 0..m.div_ceil(MR) {
        let i0 = p * MR;
        let mr_eff = (m - i0).min(MR);
        let panel = &mut dst[p * k * MR..(p + 1) * k * MR];
        if trans {
            // Source element (i, kk) lives at a[kk*m + i0 + i]: contiguous
            // reads and contiguous writes per k-step.
            for kk in 0..k {
                let src = &a[kk * m + i0..kk * m + i0 + mr_eff];
                let d = &mut panel[kk * MR..kk * MR + MR];
                d[..mr_eff].copy_from_slice(src);
                d[mr_eff..].fill(0.0);
            }
        } else {
            // Source rows are contiguous; write k-major with stride MR.
            for (i, row) in a[i0 * k..(i0 + mr_eff) * k].chunks_exact(k).enumerate() {
                for (kk, &v) in row.iter().enumerate() {
                    panel[kk * MR + i] = v;
                }
            }
            if mr_eff < MR {
                for kk in 0..k {
                    panel[kk * MR + mr_eff..(kk + 1) * MR].fill(0.0);
                }
            }
        }
    }
}

/// Pack logical `B: [k, n]` into NR-column panels. `trans` means the source
/// buffer stores `Bᵀ` (i.e. it is `[n, k]` row-major).
pub(crate) fn pack_b(dst: &mut [f32], b: &[f32], k: usize, n: usize, trans: bool) {
    debug_assert!(dst.len() >= packed_b_len(k, n));
    debug_assert_eq!(b.len(), k * n);
    for q in 0..n.div_ceil(NR) {
        let j0 = q * NR;
        let nr_eff = (n - j0).min(NR);
        let panel = &mut dst[q * k * NR..(q + 1) * k * NR];
        if trans {
            // Source element (kk, j) lives at b[(j0+j)*k + kk]: read each
            // source row (one output column) contiguously, scatter into the
            // k-major panel.
            for (j, col) in b[j0 * k..(j0 + nr_eff) * k].chunks_exact(k).enumerate() {
                for (kk, &v) in col.iter().enumerate() {
                    panel[kk * NR + j] = v;
                }
            }
            if nr_eff < NR {
                for kk in 0..k {
                    panel[kk * NR + nr_eff..(kk + 1) * NR].fill(0.0);
                }
            }
        } else {
            for kk in 0..k {
                let src = &b[kk * n + j0..kk * n + j0 + nr_eff];
                let d = &mut panel[kk * NR..kk * NR + NR];
                d[..nr_eff].copy_from_slice(src);
                d[nr_eff..].fill(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_matches_both_layouts() {
        let (m, k) = (5usize, 3usize);
        // A[i][kk] = 10*i + kk.
        let a: Vec<f32> = (0..m * k).map(|x| (10 * (x / k) + x % k) as f32).collect();
        let at: Vec<f32> = (0..k * m).map(|x| (10 * (x % m) + x / m) as f32).collect();
        let mut p1 = vec![-1.0; packed_a_len(m, k)];
        let mut p2 = vec![-1.0; packed_a_len(m, k)];
        pack_a(&mut p1, &a, m, k, false);
        pack_a(&mut p2, &at, m, k, true);
        assert_eq!(p1, p2);
        // Panel 0, k-step 1, lane 2 must hold A[2][1] = 21.
        assert_eq!(p1[MR + 2], 21.0);
        // Lanes past the m=5 edge are zero-padded in every k-step.
        for kk in 0..k {
            assert_eq!(p1[kk * MR + m..(kk + 1) * MR], [0.0; MR - 5]);
        }
    }

    #[test]
    fn pack_b_matches_both_layouts() {
        let (k, n) = (3usize, 5usize);
        let b: Vec<f32> = (0..k * n).map(|x| (10 * (x / n) + x % n) as f32).collect();
        let bt: Vec<f32> = (0..n * k).map(|x| (10 * (x % k) + x / k) as f32).collect();
        let mut p1 = vec![-1.0; packed_b_len(k, n)];
        let mut p2 = vec![-1.0; packed_b_len(k, n)];
        pack_b(&mut p1, &b, k, n, false);
        pack_b(&mut p2, &bt, k, n, true);
        assert_eq!(p1, p2);
        // k-step 2, column 4 must hold B[2][4] = 24; padding is zero.
        assert_eq!(p1[2 * NR + 4], 24.0);
        assert_eq!(p1[2 * NR + n], 0.0);
    }
}
