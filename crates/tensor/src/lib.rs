//! Dense tensor substrate for the training frameworks.
//!
//! Row-major `f32` tensors with exactly the operations the three framework
//! frontends need: elementwise arithmetic, matrix multiplication, im2col
//! convolution, and pooling. Matrix multiplication and convolution run on
//! runtime-dispatched SIMD microkernels (AVX-512 → AVX2+FMA → scalar lane
//! emulation) under a *lane-stable* determinism contract: each output
//! element is one fused-multiply-add chain in ascending-k order, pinned to
//! a single lane/task, so results are bitwise-deterministic regardless of
//! host ISA, thread count, schedule, or kernel mode (the paper's Section
//! V-A3 determinism requirement; see DESIGN.md §6).

#![deny(missing_docs)]

mod conv;
mod dispatch;
mod divmod;
mod init;
mod kernel;
mod linalg;
mod pack;
mod simd;
mod tensor;
mod workspace;

pub use conv::{
    avgpool2d, avgpool2d_backward, col2im, conv2d, conv2d_backward, conv2d_backward_ws,
    conv2d_backward_ws_ex, conv2d_ws, im2col, maxpool2d, maxpool2d_backward, Conv2dGrads, ConvSpec,
    PoolSpec,
};
pub use dispatch::{kernel_mode, set_kernel_mode, KernelMode};
pub use init::{he_normal, xavier_uniform};
pub use linalg::{
    matmul, matmul_a_bt, matmul_a_bt_naive, matmul_at_b, matmul_at_b_naive, matmul_naive,
    transpose2d,
};
pub use simd::{active_isa_name, cpu_features, minmax_nan, MinMax};
pub use tensor::Tensor;
pub use workspace::{workspace_alloc_events, ConvWorkspace};
