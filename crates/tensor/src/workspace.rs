//! Reusable kernel workspaces: steady-state training performs zero heap
//! allocations *inside* the kernels.
//!
//! Two kinds of scratch memory exist:
//!
//! * **GEMM pack buffers** — thread-local, grown high-water-mark style on
//!   first use and reused by every subsequent product on that thread.
//! * **[`ConvWorkspace`]** — owned by each convolution layer and threaded
//!   through `conv2d_ws`/`conv2d_backward_ws`, so the backward pass reuses
//!   the forward pass's im2col columns instead of recomputing them, and all
//!   intermediate buffers (columns, gradient columns, permuted upstream
//!   gradient, GEMM product) survive across steps.
//!
//! Every buffer growth bumps a global counter ([`workspace_alloc_events`]);
//! tests assert it stays flat once shapes have been seen, which is the
//! "no per-step kernel allocations" guarantee.

use crate::conv::ConvSpec;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workspace buffer (re)allocations since process start.
static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

/// How many times any kernel workspace buffer had to grow. Constant between
/// two points in time ⇒ every kernel call in between ran allocation-free
/// (workspace-wise).
pub fn workspace_alloc_events() -> usize {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Grow `buf` to at least `need` elements, counting the growth event.
/// Never shrinks: the high-water mark is the steady state.
pub(crate) fn ensure(buf: &mut Vec<f32>, need: usize) {
    if buf.len() < need {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        buf.resize(need, 0.0);
    }
}

struct GemmBuffers {
    a_pack: Vec<f32>,
    b_pack: Vec<f32>,
}

thread_local! {
    static GEMM_WS: RefCell<GemmBuffers> =
        const { RefCell::new(GemmBuffers { a_pack: Vec::new(), b_pack: Vec::new() }) };
}

/// Borrow this thread's pack buffers, grown to the requested lengths.
pub(crate) fn with_gemm_ws<R>(
    a_need: usize,
    b_need: usize,
    f: impl FnOnce(&mut [f32], &mut [f32]) -> R,
) -> R {
    GEMM_WS.with(|cell| {
        let mut ws = cell.borrow_mut();
        ensure(&mut ws.a_pack, a_need);
        ensure(&mut ws.b_pack, b_need);
        let GemmBuffers { a_pack, b_pack } = &mut *ws;
        f(&mut a_pack[..a_need], &mut b_pack[..b_need])
    })
}

/// The geometry a [`ConvWorkspace`]'s column buffer was filled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConvKey {
    pub(crate) x_shape: [usize; 4],
    pub(crate) kh: usize,
    pub(crate) kw: usize,
    pub(crate) spec: ConvSpec,
}

/// Per-layer convolution scratch memory (see module docs). Create one per
/// conv layer and pass it to both `conv2d_ws` and `conv2d_backward_ws`.
#[derive(Debug, Default)]
pub struct ConvWorkspace {
    /// im2col columns of the last forward input, stored tap-major
    /// (`[c*kh*kw, n*oh*ow]`) so no GEMM consuming them needs a transpose.
    pub(crate) cols: Vec<f32>,
    /// Gradient columns (backward dX path; tap-major for stride 1,
    /// patch-major otherwise).
    pub(crate) dcols: Vec<f32>,
    /// Upstream gradient flattened patch-major to `[n*oh*ow, o]`.
    pub(crate) dflat: Vec<f32>,
    /// Upstream gradient gathered channel-major to `[o, n*oh*ow]`.
    pub(crate) dflat_t: Vec<f32>,
    /// Forward GEMM product `[o, n*oh*ow]` before the NCHW permute; the
    /// backward pass reuses it for the transposed weight gradient.
    pub(crate) prod: Vec<f32>,
    /// Geometry `cols` currently holds, if any.
    pub(crate) key: Option<ConvKey>,
}

impl ConvWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the record of what `cols` holds (e.g. after the input tensor it
    /// was computed from has been mutated). Buffers stay allocated.
    pub fn invalidate(&mut self) {
        self.key = None;
    }

    /// Bytes currently retained across steps.
    pub fn retained_bytes(&self) -> usize {
        (self.cols.capacity()
            + self.dcols.capacity()
            + self.dflat.capacity()
            + self.dflat_t.capacity()
            + self.prod.capacity())
            * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_ws_grows_once_per_high_water_mark() {
        // Use shapes no other test uses to keep the counter readable.
        let before = workspace_alloc_events();
        with_gemm_ws(977, 1009, |a, b| {
            assert_eq!(a.len(), 977);
            assert_eq!(b.len(), 1009);
        });
        let grown = workspace_alloc_events();
        assert!(grown > before);
        with_gemm_ws(977, 1009, |_, _| {});
        with_gemm_ws(100, 200, |a, b| {
            assert_eq!(a.len(), 100);
            assert_eq!(b.len(), 200);
        });
        assert_eq!(workspace_alloc_events(), grown, "re-use must not reallocate");
    }

    #[test]
    fn conv_workspace_reports_retention() {
        let mut ws = ConvWorkspace::new();
        assert_eq!(ws.retained_bytes(), 0);
        ensure(&mut ws.cols, 64);
        assert!(ws.retained_bytes() >= 64 * 4);
        ws.invalidate();
        assert!(ws.key.is_none());
    }
}
