//! Reusable kernel workspaces: steady-state training performs zero heap
//! allocations *inside* the kernels.
//!
//! Two kinds of scratch memory exist:
//!
//! * **GEMM pack buffers** — thread-local, grown high-water-mark style on
//!   first use and reused by every subsequent product on that thread.
//! * **[`ConvWorkspace`]** — owned by each convolution layer and threaded
//!   through `conv2d_ws`/`conv2d_backward_ws`, so the backward pass reuses
//!   the forward pass's im2col columns instead of recomputing them, and all
//!   intermediate buffers (columns, gradient columns, permuted upstream
//!   gradient, GEMM product) survive across steps.
//!
//! All workspace buffers are [`AVec`]s: 64-byte-aligned so the SIMD
//! microkernels can use aligned vector loads on packed panels. The kernels
//! debug-assert that alignment at entry, so a regression to unaligned
//! buffers fails loudly instead of silently degrading.
//!
//! Every buffer growth bumps a global counter ([`workspace_alloc_events`]);
//! tests assert it stays flat once shapes have been seen, which is the
//! "no per-step kernel allocations" guarantee.

use crate::conv::ConvSpec;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workspace buffer (re)allocations since process start.
static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

/// How many times any kernel workspace buffer had to grow. Constant between
/// two points in time ⇒ every kernel call in between ran allocation-free
/// (workspace-wise).
pub fn workspace_alloc_events() -> usize {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Alignment (bytes) of every workspace buffer: one AVX-512 vector.
pub(crate) const WS_ALIGN: usize = 64;

/// A grow-once `f32` buffer whose data pointer is 64-byte aligned.
///
/// Built on a plain `Vec<f32>` over-allocated by one vector's worth of
/// elements; the aligned window starts at a computed offset. Growth
/// preserves the existing prefix (like `Vec::resize`) and counts one
/// [`workspace_alloc_events`] event. Dereferences to `[f32]` of the
/// high-water-mark length.
#[derive(Debug, Default)]
pub(crate) struct AVec {
    raw: Vec<f32>,
    off: usize,
    len: usize,
}

impl AVec {
    /// An empty buffer (const so thread-locals can use const-init).
    pub(crate) const fn new() -> Self {
        AVec { raw: Vec::new(), off: 0, len: 0 }
    }

    /// Grow to at least `need` elements (zero-filling new space,
    /// preserving existing contents), counting the growth event.
    /// Never shrinks: the high-water mark is the steady state.
    pub(crate) fn ensure(&mut self, need: usize) {
        if self.len >= need {
            return;
        }
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        let pad = WS_ALIGN / std::mem::size_of::<f32>();
        let mut raw = vec![0.0f32; need + pad];
        // `Vec<f32>` is 4-byte aligned, so the byte distance to the next
        // 64-byte boundary is always a whole number of elements.
        let addr = raw.as_ptr() as usize;
        let off = (WS_ALIGN - addr % WS_ALIGN) % WS_ALIGN / std::mem::size_of::<f32>();
        raw[off..off + self.len].copy_from_slice(&self.raw[self.off..self.off + self.len]);
        self.raw = raw;
        self.off = off;
        self.len = need;
        debug_assert_eq!(self.as_ptr() as usize % WS_ALIGN, 0);
    }

    /// Heap bytes currently retained.
    pub(crate) fn retained_bytes(&self) -> usize {
        self.raw.capacity() * std::mem::size_of::<f32>()
    }
}

impl Deref for AVec {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.raw[self.off..self.off + self.len]
    }
}

impl DerefMut for AVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.raw[self.off..self.off + self.len]
    }
}

/// Grow `buf` to at least `need` elements, counting the growth event.
pub(crate) fn ensure(buf: &mut AVec, need: usize) {
    buf.ensure(need);
}

struct GemmBuffers {
    a_pack: AVec,
    b_pack: AVec,
}

thread_local! {
    static GEMM_WS: RefCell<GemmBuffers> =
        const { RefCell::new(GemmBuffers { a_pack: AVec::new(), b_pack: AVec::new() }) };
}

/// Borrow this thread's pack buffers, grown to the requested lengths.
/// Both slices start 64-byte aligned.
pub(crate) fn with_gemm_ws<R>(
    a_need: usize,
    b_need: usize,
    f: impl FnOnce(&mut [f32], &mut [f32]) -> R,
) -> R {
    GEMM_WS.with(|cell| {
        let mut ws = cell.borrow_mut();
        ws.a_pack.ensure(a_need);
        ws.b_pack.ensure(b_need);
        let GemmBuffers { a_pack, b_pack } = &mut *ws;
        f(&mut a_pack[..a_need], &mut b_pack[..b_need])
    })
}

/// The geometry a [`ConvWorkspace`]'s column buffer was filled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConvKey {
    pub(crate) x_shape: [usize; 4],
    pub(crate) kh: usize,
    pub(crate) kw: usize,
    pub(crate) spec: ConvSpec,
}

/// Per-layer convolution scratch memory (see module docs). Create one per
/// conv layer and pass it to both `conv2d_ws` and `conv2d_backward_ws`.
/// All buffers are 64-byte aligned.
#[derive(Debug, Default)]
pub struct ConvWorkspace {
    /// im2col columns of the last forward input, stored tap-major
    /// (`[c*kh*kw, n*oh*ow]`) so no GEMM consuming them needs a transpose.
    pub(crate) cols: AVec,
    /// Gradient columns (backward dX path; tap-major for stride 1,
    /// patch-major otherwise).
    pub(crate) dcols: AVec,
    /// Upstream gradient flattened patch-major to `[n*oh*ow, o]`.
    pub(crate) dflat: AVec,
    /// Upstream gradient gathered channel-major to `[o, n*oh*ow]`.
    pub(crate) dflat_t: AVec,
    /// Forward GEMM product `[o, n*oh*ow]` before the NCHW permute; the
    /// backward pass reuses it for the transposed weight gradient.
    pub(crate) prod: AVec,
    /// Geometry `cols` currently holds, if any.
    pub(crate) key: Option<ConvKey>,
}

impl ConvWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the record of what `cols` holds (e.g. after the input tensor it
    /// was computed from has been mutated). Buffers stay allocated.
    pub fn invalidate(&mut self) {
        self.key = None;
    }

    /// Bytes currently retained across steps.
    pub fn retained_bytes(&self) -> usize {
        self.cols.retained_bytes()
            + self.dcols.retained_bytes()
            + self.dflat.retained_bytes()
            + self.dflat_t.retained_bytes()
            + self.prod.retained_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_ws_grows_once_per_high_water_mark() {
        // Use shapes no other test uses to keep the counter readable.
        let before = workspace_alloc_events();
        with_gemm_ws(977, 1009, |a, b| {
            assert_eq!(a.len(), 977);
            assert_eq!(b.len(), 1009);
        });
        let grown = workspace_alloc_events();
        assert!(grown > before);
        with_gemm_ws(977, 1009, |_, _| {});
        with_gemm_ws(100, 200, |a, b| {
            assert_eq!(a.len(), 100);
            assert_eq!(b.len(), 200);
        });
        assert_eq!(workspace_alloc_events(), grown, "re-use must not reallocate");
    }

    #[test]
    fn gemm_ws_buffers_are_64_byte_aligned() {
        with_gemm_ws(33, 77, |a, b| {
            assert_eq!(a.as_ptr() as usize % WS_ALIGN, 0);
            assert_eq!(b.as_ptr() as usize % WS_ALIGN, 0);
        });
    }

    #[test]
    fn avec_growth_preserves_prefix_and_alignment() {
        let mut v = AVec::new();
        v.ensure(10);
        for (i, x) in v.iter_mut().enumerate() {
            *x = i as f32;
        }
        v.ensure(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.as_ptr() as usize % WS_ALIGN, 0);
        for (i, &x) in v.iter().enumerate().take(10) {
            assert_eq!(x, i as f32, "growth must preserve existing contents");
        }
        assert_eq!(v[10], 0.0);
    }

    #[test]
    fn conv_workspace_reports_retention() {
        let mut ws = ConvWorkspace::new();
        assert_eq!(ws.retained_bytes(), 0);
        ensure(&mut ws.cols, 64);
        assert!(ws.retained_bytes() >= 64 * 4);
        assert_eq!(ws.cols.as_ptr() as usize % WS_ALIGN, 0);
        ws.invalidate();
        assert!(ws.key.is_none());
    }
}
