//! Runtime-dispatched SIMD microkernels behind the lane-stable contract.
//!
//! Every kernel here computes each output element as one ascending-k
//! fused multiply-add chain: `c = fma(a_k, b_k, c)` for k = 0, 1, 2, ….
//! Vectorization is *broadcast-style* — a scalar of A is broadcast
//! against a vector of B columns — so each output element is pinned to
//! one SIMD lane for its entire chain and the chain never crosses
//! lanes. IEEE-754 `fmaddps` is lane-wise identical to scalar
//! `f32::mul_add`, which makes the AVX-512, AVX2, and scalar
//! lane-emulating paths bit-identical by construction (see DESIGN.md
//! §6). Genuine cross-element reductions go through [`sum_lanes8`],
//! which fixes an 8-lane k-split and a frozen lane-combination tree.
//!
//! All `unsafe` kernels are gated behind [`Isa`] values returned by
//! [`active_isa`], which only reports instruction sets the host
//! actually supports (`is_x86_feature_detected!`).

use crate::pack::{MR, NR};
use std::sync::OnceLock;

/// Instruction set selected for the packed GEMM microkernels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Isa {
    /// 512-bit broadcast-FMA kernels (requires `avx512f`).
    Avx512,
    /// 256-bit broadcast-FMA kernels (requires `avx2` + `fma`).
    Avx2,
    /// Scalar lane-emulating kernels (`f32::mul_add` chains).
    Scalar,
}

/// Detects the widest ISA the host supports, once.
pub(crate) fn active_isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Isa {
    if std::arch::is_x86_feature_detected!("avx512f") {
        Isa::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("fma")
    {
        Isa::Avx2
    } else {
        Isa::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> Isa {
    Isa::Scalar
}

/// Human-readable list of the detected CPU features relevant to the
/// kernels (recorded into bench metadata so numbers are attributable).
pub fn cpu_features() -> &'static str {
    static S: OnceLock<String> = OnceLock::new();
    S.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let mut feats: Vec<&str> = Vec::new();
            if std::arch::is_x86_feature_detected!("avx512f") {
                feats.push("avx512f");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                feats.push("avx2");
            }
            if std::arch::is_x86_feature_detected!("fma") {
                feats.push("fma");
            }
            if feats.is_empty() {
                "x86-64-baseline".to_string()
            } else {
                feats.join("+")
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            "non-x86".to_string()
        }
    })
    .as_str()
}

/// Name of the microkernel family the `Simd` mode dispatches to on this
/// host: `"avx512"`, `"avx2"`, or `"scalar"` (recorded into bench
/// metadata alongside [`cpu_features`]).
pub fn active_isa_name() -> &'static str {
    match active_isa() {
        Isa::Avx512 => "avx512",
        Isa::Avx2 => "avx2",
        Isa::Scalar => "scalar",
    }
}

// ---------------------------------------------------------------------------
// Packed-panel microkernels (x86_64).
//
// A panels are MR-major (`MR` consecutive row scalars per k step), B
// panels are NR-major (`NR` consecutive column scalars per k step,
// 64-byte aligned, zero-padded at edges). C tiles accumulate in place:
// the kernel loads C, extends each element's fma chain by `kc` links,
// and stores back — the f32 memory round-trip between KC blocks is
// exact, so blocking never perturbs a chain.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    #[inline(always)]
    fn mask16(w: usize) -> __mmask16 {
        debug_assert!(w <= 16);
        ((1u32 << w) - 1) as __mmask16
    }

    #[inline(always)]
    fn assert_panel_aligned(b: *const f32) {
        debug_assert_eq!(b as usize % 64, 0, "packed B panel lost its 64-byte alignment");
    }

    /// Full MR×NR tile, AVX-512: 16 zmm accumulators, two aligned B
    /// loads + MR broadcasts + 16 FMAs per k step, unrolled by 2.
    ///
    /// # Safety
    /// `a` must point to `MR*kc` packed floats, `b` to `NR*kc` packed
    /// floats (64-byte aligned), and `c` to an MR×NR tile with row
    /// stride `ldc` (at least NR floats per row). Caller must have
    /// verified `avx512f` support.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn tile_avx512(
        a: *const f32,
        b: *const f32,
        kc: usize,
        c: *mut f32,
        ldc: usize,
    ) {
        assert_panel_aligned(b);
        let mut acc0 = [_mm512_setzero_ps(); MR];
        let mut acc1 = [_mm512_setzero_ps(); MR];
        for (i, (a0, a1)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
            let row = c.add(i * ldc);
            *a0 = _mm512_loadu_ps(row);
            *a1 = _mm512_loadu_ps(row.add(16));
        }
        let mut ap = a;
        let mut bp = b;
        let mut p = 0;
        while p + 2 <= kc {
            let b0 = _mm512_load_ps(bp);
            let b1 = _mm512_load_ps(bp.add(16));
            for i in 0..MR {
                let av = _mm512_set1_ps(*ap.add(i));
                acc0[i] = _mm512_fmadd_ps(av, b0, acc0[i]);
                acc1[i] = _mm512_fmadd_ps(av, b1, acc1[i]);
            }
            let b2 = _mm512_load_ps(bp.add(NR));
            let b3 = _mm512_load_ps(bp.add(NR + 16));
            for i in 0..MR {
                let av = _mm512_set1_ps(*ap.add(MR + i));
                acc0[i] = _mm512_fmadd_ps(av, b2, acc0[i]);
                acc1[i] = _mm512_fmadd_ps(av, b3, acc1[i]);
            }
            ap = ap.add(2 * MR);
            bp = bp.add(2 * NR);
            p += 2;
        }
        if p < kc {
            let b0 = _mm512_load_ps(bp);
            let b1 = _mm512_load_ps(bp.add(16));
            for i in 0..MR {
                let av = _mm512_set1_ps(*ap.add(i));
                acc0[i] = _mm512_fmadd_ps(av, b0, acc0[i]);
                acc1[i] = _mm512_fmadd_ps(av, b1, acc1[i]);
            }
        }
        for (i, (a0, a1)) in acc0.iter().zip(acc1.iter()).enumerate() {
            let row = c.add(i * ldc);
            _mm512_storeu_ps(row, *a0);
            _mm512_storeu_ps(row.add(16), *a1);
        }
    }

    /// Edge tile (`mr_eff`×`nr_eff`), AVX-512 with masked C accesses.
    /// B edge columns are zero-padded in the panel, so masked-off lanes
    /// accumulate exact zeros and never touch memory.
    ///
    /// # Safety
    /// As [`tile_avx512`], with `mr_eff <= MR`, `1 <= nr_eff <= NR`,
    /// and `c` pointing to an `mr_eff`×`nr_eff` region of stride `ldc`.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn tile_avx512_edge(
        a: *const f32,
        b: *const f32,
        kc: usize,
        c: *mut f32,
        ldc: usize,
        mr_eff: usize,
        nr_eff: usize,
    ) {
        assert_panel_aligned(b);
        debug_assert!(mr_eff <= MR && (1..=NR).contains(&nr_eff));
        let m0 = mask16(nr_eff.min(16));
        let m1 = mask16(nr_eff.saturating_sub(16));
        let mut acc0 = [_mm512_setzero_ps(); MR];
        let mut acc1 = [_mm512_setzero_ps(); MR];
        for i in 0..mr_eff {
            let row = c.add(i * ldc);
            acc0[i] = _mm512_maskz_loadu_ps(m0, row);
            acc1[i] = _mm512_maskz_loadu_ps(m1, row.wrapping_add(16));
        }
        let mut ap = a;
        let mut bp = b;
        for _ in 0..kc {
            let b0 = _mm512_load_ps(bp);
            let b1 = _mm512_load_ps(bp.add(16));
            for i in 0..mr_eff {
                let av = _mm512_set1_ps(*ap.add(i));
                acc0[i] = _mm512_fmadd_ps(av, b0, acc0[i]);
                acc1[i] = _mm512_fmadd_ps(av, b1, acc1[i]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for i in 0..mr_eff {
            let row = c.add(i * ldc);
            _mm512_mask_storeu_ps(row, m0, acc0[i]);
            _mm512_mask_storeu_ps(row.wrapping_add(16), m1, acc1[i]);
        }
    }

    /// Full MR×NR tile, AVX2+FMA: four 4-row × 16-column register
    /// sub-tiles, each sweeping the whole panel depth (the B panel is
    /// L1-resident, so the re-reads are cheap).
    ///
    /// # Safety
    /// As [`tile_avx512`]; caller must have verified `avx2` and `fma`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn tile_avx2(
        a: *const f32,
        b: *const f32,
        kc: usize,
        c: *mut f32,
        ldc: usize,
    ) {
        assert_panel_aligned(b);
        for rh in (0..MR).step_by(4) {
            for cb in (0..NR).step_by(16) {
                let mut acc = [[_mm256_setzero_ps(); 2]; 4];
                for (r, pair) in acc.iter_mut().enumerate() {
                    let row = c.add((rh + r) * ldc + cb);
                    pair[0] = _mm256_loadu_ps(row);
                    pair[1] = _mm256_loadu_ps(row.add(8));
                }
                let mut ap = a;
                let mut bp = b.add(cb);
                for _ in 0..kc {
                    let b0 = _mm256_load_ps(bp);
                    let b1 = _mm256_load_ps(bp.add(8));
                    for (r, pair) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*ap.add(rh + r));
                        pair[0] = _mm256_fmadd_ps(av, b0, pair[0]);
                        pair[1] = _mm256_fmadd_ps(av, b1, pair[1]);
                    }
                    ap = ap.add(MR);
                    bp = bp.add(NR);
                }
                for (r, pair) in acc.iter().enumerate() {
                    let row = c.add((rh + r) * ldc + cb);
                    _mm256_storeu_ps(row, pair[0]);
                    _mm256_storeu_ps(row.add(8), pair[1]);
                }
            }
        }
    }

    #[inline(always)]
    unsafe fn lane_mask8(w: usize) -> __m256i {
        debug_assert!(w <= 8);
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        _mm256_cmpgt_epi32(_mm256_set1_epi32(w as i32), idx)
    }

    /// Edge tile, AVX2+FMA: one row at a time, four ymm column slots
    /// with masked C accesses; zero-padded B keeps dead lanes at zero.
    ///
    /// # Safety
    /// As [`tile_avx512_edge`]; caller must have verified `avx2`+`fma`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn tile_avx2_edge(
        a: *const f32,
        b: *const f32,
        kc: usize,
        c: *mut f32,
        ldc: usize,
        mr_eff: usize,
        nr_eff: usize,
    ) {
        assert_panel_aligned(b);
        debug_assert!(mr_eff <= MR && (1..=NR).contains(&nr_eff));
        let masks = [
            lane_mask8(nr_eff.min(8)),
            lane_mask8(nr_eff.saturating_sub(8).min(8)),
            lane_mask8(nr_eff.saturating_sub(16).min(8)),
            lane_mask8(nr_eff.saturating_sub(24).min(8)),
        ];
        for i in 0..mr_eff {
            let row = c.add(i * ldc);
            let mut acc = [_mm256_setzero_ps(); 4];
            for (v, a_v) in acc.iter_mut().enumerate() {
                *a_v = _mm256_maskload_ps(row.wrapping_add(8 * v), masks[v]);
            }
            let mut ap = a.add(i);
            let mut bp = b;
            for _ in 0..kc {
                let av = _mm256_set1_ps(*ap);
                for (v, a_v) in acc.iter_mut().enumerate() {
                    let bv = _mm256_load_ps(bp.add(8 * v));
                    *a_v = _mm256_fmadd_ps(av, bv, *a_v);
                }
                ap = ap.add(MR);
                bp = bp.add(NR);
            }
            for (v, a_v) in acc.iter().enumerate() {
                _mm256_maskstore_ps(row.wrapping_add(8 * v), masks[v], *a_v);
            }
        }
    }

    // -----------------------------------------------------------------------
    // No-pack small-problem block kernels (B walked in place, row-major).
    // `a_rs`/`a_cs` are A's row/k strides so transposed A needs no copy.
    // -----------------------------------------------------------------------

    /// Up-to-4-rows × up-to-32-columns block over unpacked B, AVX-512.
    ///
    /// # Safety
    /// `out` points to the block origin in a row-major matrix of row
    /// stride `ldo`; `b` to B's `(0, j0)` with row stride `ldb`; `a` to
    /// the block's first row with element `(r, kk)` at
    /// `a + r*a_rs + kk*a_cs`. `rows <= 4`, `1 <= ncols <= 32`. Caller
    /// must have verified `avx512f`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn small_block_avx512(
        out: *mut f32,
        ldo: usize,
        a: *const f32,
        a_rs: usize,
        a_cs: usize,
        b: *const f32,
        ldb: usize,
        rows: usize,
        ncols: usize,
        k: usize,
    ) {
        debug_assert!((1..=4).contains(&rows) && (1..=32).contains(&ncols));
        let m0 = mask16(ncols.min(16));
        let m1 = mask16(ncols.saturating_sub(16));
        let mut acc0 = [_mm512_setzero_ps(); 4];
        let mut acc1 = [_mm512_setzero_ps(); 4];
        for r in 0..rows {
            let row = out.add(r * ldo);
            acc0[r] = _mm512_maskz_loadu_ps(m0, row);
            acc1[r] = _mm512_maskz_loadu_ps(m1, row.wrapping_add(16));
        }
        for kk in 0..k {
            let bp = b.add(kk * ldb);
            let b0 = _mm512_maskz_loadu_ps(m0, bp);
            let b1 = _mm512_maskz_loadu_ps(m1, bp.wrapping_add(16));
            for r in 0..rows {
                let av = _mm512_set1_ps(*a.add(r * a_rs + kk * a_cs));
                acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
                acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
            }
        }
        for r in 0..rows {
            let row = out.add(r * ldo);
            _mm512_mask_storeu_ps(row, m0, acc0[r]);
            _mm512_mask_storeu_ps(row.wrapping_add(16), m1, acc1[r]);
        }
    }

    /// Up-to-4-rows × up-to-16-columns block over unpacked B, AVX2+FMA.
    ///
    /// # Safety
    /// As [`small_block_avx512`] with `ncols <= 16`; caller must have
    /// verified `avx2`+`fma`.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn small_block_avx2(
        out: *mut f32,
        ldo: usize,
        a: *const f32,
        a_rs: usize,
        a_cs: usize,
        b: *const f32,
        ldb: usize,
        rows: usize,
        ncols: usize,
        k: usize,
    ) {
        debug_assert!((1..=4).contains(&rows) && (1..=16).contains(&ncols));
        let m0 = lane_mask8(ncols.min(8));
        let m1 = lane_mask8(ncols.saturating_sub(8));
        let mut acc0 = [_mm256_setzero_ps(); 4];
        let mut acc1 = [_mm256_setzero_ps(); 4];
        for r in 0..rows {
            let row = out.add(r * ldo);
            acc0[r] = _mm256_maskload_ps(row, m0);
            acc1[r] = _mm256_maskload_ps(row.wrapping_add(8), m1);
        }
        for kk in 0..k {
            let bp = b.add(kk * ldb);
            let b0 = _mm256_maskload_ps(bp, m0);
            let b1 = _mm256_maskload_ps(bp.wrapping_add(8), m1);
            for r in 0..rows {
                let av = _mm256_set1_ps(*a.add(r * a_rs + kk * a_cs));
                acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
                acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
            }
        }
        for r in 0..rows {
            let row = out.add(r * ldo);
            _mm256_maskstore_ps(row, m0, acc0[r]);
            _mm256_maskstore_ps(row.wrapping_add(8), m1, acc1[r]);
        }
    }

    /// `dst[j] = fma(s, src[j], dst[j])`, AVX-512.
    ///
    /// # Safety
    /// Caller must have verified `avx512f`; `dst`/`src` same length.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn axpy_avx512(dst: &mut [f32], s: f32, src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let sv = _mm512_set1_ps(s);
        let d = dst.as_mut_ptr();
        let x = src.as_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let v = _mm512_fmadd_ps(sv, _mm512_loadu_ps(x.add(j)), _mm512_loadu_ps(d.add(j)));
            _mm512_storeu_ps(d.add(j), v);
            j += 16;
        }
        if j < n {
            let m = mask16(n - j);
            let v = _mm512_fmadd_ps(
                sv,
                _mm512_maskz_loadu_ps(m, x.add(j)),
                _mm512_maskz_loadu_ps(m, d.add(j)),
            );
            _mm512_mask_storeu_ps(d.add(j), m, v);
        }
    }

    /// `dst[j] = fma(s, src[j], dst[j])`, AVX2+FMA (scalar tail).
    ///
    /// # Safety
    /// Caller must have verified `avx2`+`fma`; `dst`/`src` same length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn axpy_avx2(dst: &mut [f32], s: f32, src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let sv = _mm256_set1_ps(s);
        let d = dst.as_mut_ptr();
        let x = src.as_ptr();
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_fmadd_ps(sv, _mm256_loadu_ps(x.add(j)), _mm256_loadu_ps(d.add(j)));
            _mm256_storeu_ps(d.add(j), v);
            j += 8;
        }
        while j < n {
            *d.add(j) = s.mul_add(*x.add(j), *d.add(j));
            j += 1;
        }
    }

    /// `dst[j] += src[j]`, AVX2 (plain lane-wise add; bit-equal to the
    /// scalar loop by IEEE-754, so every kernel mode may share it).
    ///
    /// # Safety
    /// Caller must have verified `avx2`; `dst`/`src` same length.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn add_assign_avx2(dst: &mut [f32], src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let x = src.as_ptr();
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(d.add(j)), _mm256_loadu_ps(x.add(j)));
            _mm256_storeu_ps(d.add(j), v);
            j += 8;
        }
        while j < n {
            *d.add(j) += *x.add(j);
            j += 1;
        }
    }

    /// 8-lane NaN-aware min/max sweep, AVX2: each lane keeps a running
    /// min and max with `vminps`/`vmaxps` select semantics, NaN inputs
    /// are blended back to the lane's running value (and OR-ed into a
    /// NaN flag), and the eight lanes combine through the same frozen
    /// tree as [`super::minmax_nan_ref`] — bit-identical by construction,
    /// signed zeros included.
    ///
    /// # Safety
    /// Caller must have verified `avx2`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn minmax_nan_avx2(xs: &[f32]) -> super::MinMax {
        let mut lo = _mm256_set1_ps(f32::INFINITY);
        let mut hi = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut nan = _mm256_setzero_ps();
        let chunks = xs.len() / 8;
        let p = xs.as_ptr();
        for t in 0..chunks {
            let v = _mm256_loadu_ps(p.add(8 * t));
            let unord = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
            nan = _mm256_or_ps(nan, unord);
            // NaN lanes keep the running value: min/max inputs never see
            // a NaN, so `vminps`'s take-src2-when-unordered rule is moot.
            let keep_lo = _mm256_blendv_ps(v, lo, unord);
            let keep_hi = _mm256_blendv_ps(v, hi, unord);
            lo = _mm256_min_ps(lo, keep_lo);
            hi = _mm256_max_ps(hi, keep_hi);
        }
        let mut lo_l = [0.0f32; 8];
        let mut hi_l = [0.0f32; 8];
        _mm256_storeu_ps(lo_l.as_mut_ptr(), lo);
        _mm256_storeu_ps(hi_l.as_mut_ptr(), hi);
        let mut out = super::MinMax {
            lo: super::tree8(&lo_l, super::min_sel),
            hi: super::tree8(&hi_l, super::max_sel),
            nan: _mm256_movemask_ps(nan) != 0,
        };
        for &x in &xs[8 * chunks..] {
            if x.is_nan() {
                out.nan = true;
            } else {
                out.lo = super::min_sel(out.lo, x);
                out.hi = super::max_sel(out.hi, x);
            }
        }
        out
    }

    /// 8-lane k-split sum with the frozen combination tree, AVX2.
    /// Lane adds are plain `vaddps`, bit-identical to the scalar
    /// emulation in [`super::sum_lanes8_ref`].
    ///
    /// # Safety
    /// Caller must have verified `avx2`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn sum_lanes8_avx2(xs: &[f32]) -> f32 {
        let mut acc = _mm256_setzero_ps();
        let chunks = xs.len() / 8;
        let p = xs.as_ptr();
        for t in 0..chunks {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(p.add(8 * t)));
        }
        // Frozen tree: ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps(acc, 1);
        let pairs = _mm_hadd_ps(lo, hi); // [l0+l1, l2+l3, l4+l5, l6+l7]
        let quads = _mm_hadd_ps(pairs, pairs); // [(01)+(23), (45)+(67), ..]
        let tree = _mm_cvtss_f32(_mm_hadd_ps(quads, quads));
        xs[8 * chunks..].iter().fold(tree, |s, &x| s + x)
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod x86 {
    //! Stubs so the dispatch `match` compiles everywhere; `active_isa`
    //! never returns a vector ISA off x86_64, so these are unreachable.
    #![allow(clippy::too_many_arguments)]

    pub(crate) unsafe fn tile_avx512(
        _a: *const f32,
        _b: *const f32,
        _kc: usize,
        _c: *mut f32,
        _ldc: usize,
    ) {
        unreachable!("AVX-512 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn tile_avx512_edge(
        _a: *const f32,
        _b: *const f32,
        _kc: usize,
        _c: *mut f32,
        _ldc: usize,
        _mr_eff: usize,
        _nr_eff: usize,
    ) {
        unreachable!("AVX-512 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn tile_avx2(
        _a: *const f32,
        _b: *const f32,
        _kc: usize,
        _c: *mut f32,
        _ldc: usize,
    ) {
        unreachable!("AVX2 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn tile_avx2_edge(
        _a: *const f32,
        _b: *const f32,
        _kc: usize,
        _c: *mut f32,
        _ldc: usize,
        _mr_eff: usize,
        _nr_eff: usize,
    ) {
        unreachable!("AVX2 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn small_block_avx512(
        _out: *mut f32,
        _ldo: usize,
        _a: *const f32,
        _a_rs: usize,
        _a_cs: usize,
        _b: *const f32,
        _ldb: usize,
        _rows: usize,
        _ncols: usize,
        _k: usize,
    ) {
        unreachable!("AVX-512 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn small_block_avx2(
        _out: *mut f32,
        _ldo: usize,
        _a: *const f32,
        _a_rs: usize,
        _a_cs: usize,
        _b: *const f32,
        _ldb: usize,
        _rows: usize,
        _ncols: usize,
        _k: usize,
    ) {
        unreachable!("AVX2 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn axpy_avx512(_dst: &mut [f32], _s: f32, _src: &[f32]) {
        unreachable!("AVX-512 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn axpy_avx2(_dst: &mut [f32], _s: f32, _src: &[f32]) {
        unreachable!("AVX2 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn add_assign_avx2(_dst: &mut [f32], _src: &[f32]) {
        unreachable!("AVX2 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn sum_lanes8_avx2(_xs: &[f32]) -> f32 {
        unreachable!("AVX2 kernel on non-x86_64 host")
    }

    pub(crate) unsafe fn minmax_nan_avx2(_xs: &[f32]) -> super::MinMax {
        unreachable!("AVX2 kernel on non-x86_64 host")
    }
}

pub(crate) use x86::{
    small_block_avx2, small_block_avx512, tile_avx2, tile_avx2_edge, tile_avx512, tile_avx512_edge,
};

// ---------------------------------------------------------------------------
// Safe dispatching helpers shared by the tiled drivers and conv lowering.
// These are elementwise or tree-frozen, so every kernel mode may use them
// without perturbing bits.
// ---------------------------------------------------------------------------

/// `dst[j] = fma(s, src[j], dst[j])` — one chain link per element, any
/// vector width, bit-identical to `f32::mul_add` lane-by-lane.
#[inline]
pub(crate) fn axpy(isa: Isa, dst: &mut [f32], s: f32, src: &[f32]) {
    match isa {
        Isa::Avx512 => unsafe { x86::axpy_avx512(dst, s, src) },
        Isa::Avx2 => unsafe { x86::axpy_avx2(dst, s, src) },
        Isa::Scalar => {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d = s.mul_add(x, *d);
            }
        }
    }
}

/// `dst[j] += src[j]` with the widest available ISA (elementwise, so
/// bit-equal to the scalar loop; safe for every kernel mode).
#[inline]
pub(crate) fn add_assign(dst: &mut [f32], src: &[f32]) {
    match active_isa() {
        Isa::Avx512 | Isa::Avx2 => unsafe { x86::add_assign_avx2(dst, src) },
        Isa::Scalar => {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d += x;
            }
        }
    }
}

/// Sums `xs` with the lane-stable reduction tree: the index stream is
/// split across 8 lanes (`lane l` accumulates `xs[8t + l]` in order),
/// lanes combine as `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, and any
/// tail folds in sequentially. Vector and scalar paths are
/// bit-identical by construction.
#[inline]
pub(crate) fn sum_lanes8(xs: &[f32]) -> f32 {
    match active_isa() {
        Isa::Avx512 | Isa::Avx2 => unsafe { x86::sum_lanes8_avx2(xs) },
        Isa::Scalar => sum_lanes8_ref(xs.iter().copied()),
    }
}

/// Result of a NaN-aware min/max reduction: the extreme finite-or-infinite
/// values observed and whether any NaN appeared.
///
/// Over an empty (or all-NaN) slice `lo` is `+inf` and `hi` is `-inf` —
/// the reduction identities — so range checks against calibrated bounds
/// vacuously pass and only the `nan` flag can trip. When several bitwise
/// representations of the extreme value exist (`-0.0` vs `+0.0`), the
/// frozen 8-lane fold picks one deterministically, and vector and scalar
/// paths pick the *same* one, so the result is bit-stable across ISAs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    /// Smallest non-NaN element (`+inf` if none).
    pub lo: f32,
    /// Largest non-NaN element (`-inf` if none).
    pub hi: f32,
    /// True if any element was NaN.
    pub nan: bool,
}

/// `vminps` select semantics on NaN-free inputs: keep `a` only when it is
/// strictly smaller, otherwise take `b` (ties, including `-0.0` vs `+0.0`,
/// take `b` — exactly what the vector instruction does).
#[inline]
fn min_sel(a: f32, b: f32) -> f32 {
    if a < b {
        a
    } else {
        b
    }
}

/// `vmaxps` select semantics on NaN-free inputs; ties take `b`.
#[inline]
fn max_sel(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// The frozen lane-combination tree shared by the sum and min/max
/// reductions: `((l0,l1),(l2,l3))` against `((l4,l5),(l6,l7))`.
#[inline]
fn tree8(lanes: &[f32; 8], sel: impl Fn(f32, f32) -> f32) -> f32 {
    sel(
        sel(sel(lanes[0], lanes[1]), sel(lanes[2], lanes[3])),
        sel(sel(lanes[4], lanes[5]), sel(lanes[6], lanes[7])),
    )
}

/// NaN-aware min/max of a slice with the lane-stable 8-lane split: lane
/// `l` reduces `xs[8t + l]`, lanes combine through the frozen tree, and
/// the tail folds in sequentially. NaN elements never enter the extremes;
/// they only set [`MinMax::nan`]. Vector and scalar paths are
/// bit-identical by construction, so every kernel mode may use this (it
/// is the per-batch activation-envelope check of the serving guards).
#[inline]
pub fn minmax_nan(xs: &[f32]) -> MinMax {
    match active_isa() {
        Isa::Avx512 | Isa::Avx2 => unsafe { x86::minmax_nan_avx2(xs) },
        Isa::Scalar => minmax_nan_ref(xs),
    }
}

/// Scalar emulation of [`minmax_nan`] — the reference the vector path
/// must match bit-for-bit.
pub(crate) fn minmax_nan_ref(xs: &[f32]) -> MinMax {
    let mut lo = [f32::INFINITY; 8];
    let mut hi = [f32::NEG_INFINITY; 8];
    let mut nan = false;
    let chunks = xs.len() / 8;
    for t in 0..chunks {
        for l in 0..8 {
            let x = xs[8 * t + l];
            if x.is_nan() {
                nan = true;
            } else {
                lo[l] = min_sel(lo[l], x);
                hi[l] = max_sel(hi[l], x);
            }
        }
    }
    let mut out = MinMax { lo: tree8(&lo, min_sel), hi: tree8(&hi, max_sel), nan };
    for &x in &xs[8 * chunks..] {
        if x.is_nan() {
            out.nan = true;
        } else {
            out.lo = min_sel(out.lo, x);
            out.hi = max_sel(out.hi, x);
        }
    }
    out
}

/// Scalar emulation of [`sum_lanes8`] over any element stream — the
/// reference the vector path must match bit-for-bit, and the form the
/// naive kernel mode uses (including strided streams).
pub(crate) fn sum_lanes8_ref(xs: impl Iterator<Item = f32>) -> f32 {
    let mut lanes = [0.0f32; 8];
    // Stream length is unknown, so buffer one 8-element group at a time;
    // a partial final group becomes the sequential tail.
    let mut group = [0.0f32; 8];
    let mut li = 0usize;
    for x in xs {
        group[li] = x;
        li += 1;
        if li == 8 {
            for (l, &g) in lanes.iter_mut().zip(group.iter()) {
                *l += g;
            }
            li = 0;
        }
    }
    let tree = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    group[..li].iter().fold(tree, |s, &x| s + x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, salt: u32) -> Vec<f32> {
        // Deterministic awkward values: mixed magnitudes and signs so
        // reassociation would visibly change bits.
        (0..n)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt);
                let m = (h >> 8) as f32 / (1 << 24) as f32;
                let e = ((h >> 2) % 9) as i32 - 4;
                let s = if h & 1 == 0 { 1.0 } else { -1.0 };
                s * m * (2.0f32).powi(e)
            })
            .collect()
    }

    #[test]
    fn sum_lanes8_vector_matches_scalar_reference() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let xs = seq(n, 0xbeef);
            let v = sum_lanes8(&xs);
            let s = sum_lanes8_ref(xs.iter().copied());
            assert_eq!(v.to_bits(), s.to_bits(), "tree sum diverged at n={n}: {v} vs {s}");
        }
    }

    #[test]
    fn sum_lanes8_ref_strided_stream_matches_contiguous() {
        let xs = seq(40, 7);
        let direct = sum_lanes8_ref(xs.iter().copied());
        // Interleave into a stride-3 buffer and stream it back out.
        let mut buf = vec![0.0f32; xs.len() * 3];
        for (i, &x) in xs.iter().enumerate() {
            buf[i * 3] = x;
        }
        let strided = sum_lanes8_ref((0..xs.len()).map(|i| buf[i * 3]));
        assert_eq!(direct.to_bits(), strided.to_bits());
    }

    #[test]
    fn axpy_vector_matches_scalar_bitwise() {
        let isa = active_isa();
        for n in [1usize, 5, 8, 13, 16, 31, 32, 100] {
            let src = seq(n, 3);
            let mut d_vec = seq(n, 9);
            let mut d_ref = d_vec.clone();
            axpy(isa, &mut d_vec, 1.7, &src);
            axpy(Isa::Scalar, &mut d_ref, 1.7, &src);
            for (a, b) in d_vec.iter().zip(d_ref.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "axpy diverged at n={n}");
            }
        }
    }

    #[test]
    fn add_assign_matches_scalar_bitwise() {
        for n in [1usize, 7, 8, 9, 24, 100] {
            let src = seq(n, 11);
            let mut d_vec = seq(n, 13);
            let mut d_ref = d_vec.clone();
            add_assign(&mut d_vec, &src);
            for (d, &x) in d_ref.iter_mut().zip(src.iter()) {
                *d += x;
            }
            for (a, b) in d_vec.iter().zip(d_ref.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "add_assign diverged at n={n}");
            }
        }
    }

    #[test]
    fn cpu_features_is_nonempty() {
        assert!(!cpu_features().is_empty());
    }

    #[test]
    fn minmax_vector_matches_scalar_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let xs = seq(n, 0xfeed);
            let v = minmax_nan(&xs);
            let s = minmax_nan_ref(&xs);
            assert_eq!(v.lo.to_bits(), s.lo.to_bits(), "lo diverged at n={n}");
            assert_eq!(v.hi.to_bits(), s.hi.to_bits(), "hi diverged at n={n}");
            assert_eq!(v.nan, s.nan);
        }
    }

    #[test]
    fn minmax_matches_plain_fold_values() {
        let xs = seq(777, 21);
        let m = minmax_nan(&xs);
        let lo = xs.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(m.lo, lo);
        assert_eq!(m.hi, hi);
        assert!(!m.nan);
    }

    #[test]
    fn minmax_skips_nans_but_flags_them() {
        let mut xs = seq(100, 5);
        xs[3] = f32::NAN;
        xs[64] = f32::NAN;
        xs[99] = f32::NAN; // tail position
        let m = minmax_nan(&xs);
        assert!(m.nan);
        assert!(m.lo.is_finite() && m.hi.is_finite(), "NaNs must not poison the extremes");
        let s = minmax_nan_ref(&xs);
        assert_eq!((m.lo.to_bits(), m.hi.to_bits()), (s.lo.to_bits(), s.hi.to_bits()));
    }

    #[test]
    fn minmax_propagates_infinities_as_values() {
        let mut xs = seq(33, 9);
        xs[10] = f32::INFINITY;
        xs[20] = f32::NEG_INFINITY;
        let m = minmax_nan(&xs);
        assert_eq!(m.hi, f32::INFINITY);
        assert_eq!(m.lo, f32::NEG_INFINITY);
        assert!(!m.nan);
    }

    #[test]
    fn minmax_identities_on_empty_and_all_nan() {
        let e = minmax_nan(&[]);
        assert_eq!((e.lo, e.hi, e.nan), (f32::INFINITY, f32::NEG_INFINITY, false));
        let a = minmax_nan(&[f32::NAN; 19]);
        assert_eq!((a.lo, a.hi, a.nan), (f32::INFINITY, f32::NEG_INFINITY, true));
    }

    #[test]
    fn minmax_signed_zero_is_bit_stable_across_paths() {
        // A slice whose minimum is zero with both signs present: whichever
        // representative the frozen fold picks, vector and scalar must
        // agree bit-for-bit.
        for flip in 0..4 {
            let mut xs = vec![1.0f32; 40];
            xs[7] = 0.0;
            xs[23] = -0.0;
            if flip % 2 == 1 {
                xs.swap(7, 23);
            }
            let v = minmax_nan(&xs);
            let s = minmax_nan_ref(&xs);
            assert_eq!(v.lo.to_bits(), s.lo.to_bits());
            assert_eq!(v.hi.to_bits(), s.hi.to_bits());
        }
    }
}
