//! Convolution and pooling, NCHW layout.
//!
//! Convolution is im2col + GEMM: unfold every receptive field into a row,
//! multiply by the flattened kernel matrix, fold the result back. Backward
//! reuses the same machinery (col2im scatters gradient patches).
//!
//! Two entry styles exist for convolution:
//!
//! * [`conv2d`] / [`conv2d_backward`] — self-contained, allocate their own
//!   scratch (and, in the backward pass, recompute the forward's im2col).
//! * [`conv2d_ws`] / [`conv2d_backward_ws`] — thread a per-layer
//!   [`ConvWorkspace`] through both passes, so backward *reuses* the
//!   columns forward already unfolded and all intermediates live in
//!   grow-once buffers (zero steady-state kernel allocations).
//!
//! Both styles are bitwise identical: every output element is produced by
//! exactly one task with a fixed accumulation order. The data-parallel
//! paths (im2col over images, col2im per image, pooling per plane) never
//! split any element's accumulation chain — im2col/pool forward are pure
//! writes, and the scatter kernels partition exactly along the boundaries
//! their indices never cross.

use crate::dispatch::{
    kernel_mode, mode_isa, par_enabled, KernelMode, PAR_COL2IM_MIN_ELEMS, PAR_IM2COL_MIN_ELEMS,
    PAR_POOL_MIN_ELEMS,
};
use crate::divmod::FastDivmod;
use crate::kernel::gemm_tiled;
use crate::simd;
use crate::workspace::{ensure, ConvKey, ConvWorkspace};
use crate::{matmul, matmul_a_bt, matmul_at_b, Tensor};
use rayon::prelude::*;
use std::cell::RefCell;

/// Stride/padding configuration of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Step between receptive fields.
    pub stride: usize,
    /// Zero-padding applied to all four borders.
    pub pad: usize,
}

impl ConvSpec {
    /// Output spatial extent for an input extent and kernel extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        assert!(
            input + 2 * self.pad >= kernel,
            "kernel {kernel} larger than padded input {}",
            input + 2 * self.pad
        );
        (input + 2 * self.pad - kernel) / self.stride + 1
    }
}

/// Pooling window configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Window edge length.
    pub size: usize,
    /// Step between windows.
    pub stride: usize,
}

/// Unfold one image's receptive fields into patch rows. The block is
/// zeroed once (padding positions stay zero), then each in-bounds kernel
/// tap `(ci, ky, kx)` writes its column of the patch matrix as one strided
/// sweep over the output positions it covers — long loops with no
/// per-position bounds logic, instead of `oh*ow*c*kh` few-float segments.
/// All writes are pure (no accumulation), so the write order is free.
fn im2col_image(
    dst: &mut [f32],
    src: &[f32],
    (c, h, w): (usize, usize, usize),
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let row_len = c * kh * kw;
    let stride = spec.stride;
    let pad = spec.pad;
    dst.fill(0.0);
    for ci in 0..c {
        for ky in 0..kh {
            // Output rows whose input row 0 <= oy*stride + ky - pad < h.
            let oy_lo = pad.saturating_sub(ky).div_ceil(stride).min(oh);
            let oy_hi = match (h + pad).checked_sub(ky + 1) {
                Some(t) => (t / stride + 1).min(oh),
                None => 0,
            };
            for kx in 0..kw {
                let ox_lo = pad.saturating_sub(kx).div_ceil(stride).min(ow);
                let ox_hi = match (w + pad).checked_sub(kx + 1) {
                    Some(t) => (t / stride + 1).min(ow),
                    None => 0,
                };
                if ox_lo >= ox_hi {
                    continue;
                }
                let col = (ci * kh + ky) * kw + kx;
                for oy in oy_lo..oy_hi {
                    let mut si = (ci * h + oy * stride + ky - pad) * w + ox_lo * stride + kx - pad;
                    let mut di = (oy * ow + ox_lo) * row_len + col;
                    for _ in ox_lo..ox_hi {
                        dst[di] = src[si];
                        di += row_len;
                        si += stride;
                    }
                }
            }
        }
    }
}

/// One tap lane of the tap-major im2col: `lane` is row `col` of the
/// `[c*kh*kw, n*oh*ow]` column matrix. For stride 1 both the source run and
/// the destination run are contiguous, so the whole lane is a handful of
/// straight copies per output row.
fn im2col_t_lane(
    lane: &mut [f32],
    src: &[f32],
    col: usize,
    (n, c, h, w): (usize, usize, usize, usize),
    (kh, kw): (usize, usize),
    (dm_khkw, dm_kw): (FastDivmod, FastDivmod),
    spec: ConvSpec,
) {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let ohw = oh * ow;
    let stride = spec.stride;
    let pad = spec.pad;
    // Magic-number division (the per-lane decomposition runs once per lane
    // here, but the same FastDivmod values serve thousands of lanes, and
    // hardware `div` is ~20x a multiply).
    debug_assert_eq!(dm_khkw.divisor() as usize, kh * kw);
    debug_assert_eq!(dm_kw.divisor() as usize, kw);
    let (ci, rem) = dm_khkw.div_rem(col as u32);
    let (ky, kx) = dm_kw.div_rem(rem);
    let (ci, ky, kx) = (ci as usize, ky as usize, kx as usize);
    let oy_lo = pad.saturating_sub(ky).div_ceil(stride).min(oh);
    let oy_hi = match (h + pad).checked_sub(ky + 1) {
        Some(t) => (t / stride + 1).min(oh),
        None => 0,
    };
    let ox_lo = pad.saturating_sub(kx).div_ceil(stride).min(ow);
    let ox_hi = match (w + pad).checked_sub(kx + 1) {
        Some(t) => (t / stride + 1).min(ow),
        None => 0,
    };
    lane.fill(0.0);
    if ox_lo >= ox_hi {
        return;
    }
    let run = ox_hi - ox_lo;
    for ni in 0..n {
        let img = &src[ni * c * h * w..(ni + 1) * c * h * w];
        for oy in oy_lo..oy_hi {
            let si = (ci * h + oy * stride + ky - pad) * w + ox_lo * stride + kx - pad;
            let di = ni * ohw + oy * ow + ox_lo;
            if stride == 1 {
                lane[di..di + run].copy_from_slice(&img[si..si + run]);
            } else {
                let mut si = si;
                for d in lane[di..di + run].iter_mut() {
                    *d = img[si];
                    si += stride;
                }
            }
        }
    }
}

/// Tap-major im2col over a batch: `dst` is `[c*kh*kw, n*oh*ow]` row-major
/// (the transpose of [`im2col`]'s layout). Tap lanes are independent pure
/// writes, so they parallelize without touching any accumulation order.
fn im2col_t_into(
    dst: &mut [f32],
    src: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let rows = n * oh * ow;
    let row_len = c * kh * kw;
    debug_assert_eq!(dst.len(), rows * row_len);
    let dm = (FastDivmod::new((kh * kw) as u32), FastDivmod::new(kw as u32));
    if par_enabled() && dst.len() >= PAR_IM2COL_MIN_ELEMS && row_len > 1 {
        dst.par_chunks_mut(rows).enumerate().for_each(|(col, lane)| {
            im2col_t_lane(lane, src, col, (n, c, h, w), (kh, kw), dm, spec);
        });
    } else {
        for (col, lane) in dst.chunks_mut(rows).enumerate() {
            im2col_t_lane(lane, src, col, (n, c, h, w), (kh, kw), dm, spec);
        }
    }
}

/// Tap-inverted col2im for stride-1 convolutions, consuming tap-major
/// gradient columns `[c*kh*kw, n*oh*ow]`. With stride 1 each input pixel
/// maps a kernel tap to exactly one patch, monotonically: descending
/// `(ky, kx)` is ascending `(oy, ox)`. Sweeping taps in descending order
/// therefore replays every pixel's accumulation chain in exactly the
/// canonical `(oy, ox)` patch order of [`col2im`] — same sums, same bits —
/// while every inner loop runs over contiguous memory on both sides.
fn col2im_t_image(
    dst: &mut [f32],
    src_t: &[f32],
    ni: usize,
    (n, c, h, w): (usize, usize, usize, usize),
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) {
    debug_assert_eq!(spec.stride, 1);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let ohw = oh * ow;
    let rows = n * ohw;
    let pad = spec.pad;
    for ci in 0..c {
        for ky in (0..kh).rev() {
            let oy_lo = pad.saturating_sub(ky).min(oh);
            let oy_hi = match (h + pad).checked_sub(ky + 1) {
                Some(t) => (t + 1).min(oh),
                None => 0,
            };
            for kx in (0..kw).rev() {
                let ox_lo = pad.saturating_sub(kx).min(ow);
                let ox_hi = match (w + pad).checked_sub(kx + 1) {
                    Some(t) => (t + 1).min(ow),
                    None => 0,
                };
                if ox_lo >= ox_hi {
                    continue;
                }
                let run = ox_hi - ox_lo;
                let col = (ci * kh + ky) * kw + kx;
                let lane = &src_t[col * rows..(col + 1) * rows];
                for oy in oy_lo..oy_hi {
                    let di = (ci * h + oy + ky - pad) * w + ox_lo + kx - pad;
                    let si = ni * ohw + oy * ow + ox_lo;
                    // Elementwise adds vectorize without touching any
                    // element's chain order (lane-stable: one tap per add).
                    simd::add_assign(&mut dst[di..di + run], &lane[si..si + run]);
                }
            }
        }
    }
}

/// Batch wrapper over [`col2im_t_image`]: images are disjoint scatter
/// targets, so they parallelize without reordering any pixel's chain.
fn col2im_t_into(
    dst: &mut [f32],
    src_t: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) {
    let plane = c * h * w;
    if par_enabled() && dst.len() >= PAR_COL2IM_MIN_ELEMS && n > 1 {
        dst.par_chunks_mut(plane).enumerate().for_each(|(ni, img)| {
            col2im_t_image(img, src_t, ni, (n, c, h, w), kh, kw, spec);
        });
    } else {
        for (ni, img) in dst.chunks_mut(plane).enumerate() {
            col2im_t_image(img, src_t, ni, (n, c, h, w), kh, kw, spec);
        }
    }
}

/// Slice-level im2col over a batch: `dst` is `[n*oh*ow, c*kh*kw]` row-major.
/// Images are independent pure writes, so they parallelize without touching
/// any accumulation order.
fn im2col_into(
    dst: &mut [f32],
    src: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let per_img = oh * ow * c * kh * kw;
    debug_assert_eq!(dst.len(), n * per_img);
    if par_enabled() && dst.len() >= PAR_IM2COL_MIN_ELEMS && n > 1 {
        dst.par_chunks_mut(per_img).enumerate().for_each(|(ni, img)| {
            im2col_image(img, &src[ni * c * h * w..(ni + 1) * c * h * w], (c, h, w), kh, kw, spec);
        });
    } else {
        for (ni, img) in dst.chunks_mut(per_img).enumerate() {
            im2col_image(img, &src[ni * c * h * w..(ni + 1) * c * h * w], (c, h, w), kh, kw, spec);
        }
    }
}

/// Unfold `x: [n, c, h, w]` into `[n * oh * ow, c * kh * kw]` patch rows.
pub fn im2col(x: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Tensor {
    let [n, c, h, w] = dims4(x);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let row_len = c * kh * kw;
    let mut out = vec![0.0f32; n * oh * ow * row_len];
    im2col_into(&mut out, x.data(), (n, c, h, w), kh, kw, spec);
    Tensor::from_vec(out, &[n * oh * ow, row_len])
}

/// Fold one image's patch-row gradients back onto its input plane.
/// Overlapping patches accumulate in (oy, ox, ci, ky, kx) order — the same
/// canonical order the original serial kernel used.
fn col2im_image(
    dst: &mut [f32],
    src: &[f32],
    (c, h, w): (usize, usize, usize),
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let row_len = c * kh * kw;
    for oy in 0..oh {
        let y0 = oy * spec.stride;
        let ky_lo = spec.pad.saturating_sub(y0).min(kh);
        let ky_hi = (h + spec.pad).saturating_sub(y0).min(kh).max(ky_lo);
        for ox in 0..ow {
            let row = (oy * ow + ox) * row_len;
            let x0 = ox * spec.stride;
            let kx_lo = spec.pad.saturating_sub(x0).min(kw);
            let kx_hi = (w + spec.pad).saturating_sub(x0).min(kw).max(kx_lo);
            let mut segs = src[row..row + row_len].chunks_exact(kw);
            for ci in 0..c {
                for ky in 0..kh {
                    let s = segs.next().expect("row_len = c*kh segments of kw");
                    if ky < ky_lo || ky >= ky_hi {
                        continue;
                    }
                    let d0 = (ci * h + y0 + ky - spec.pad) * w + x0 + kx_lo - spec.pad;
                    let s = &s[kx_lo..kx_hi];
                    simd::add_assign(&mut dst[d0..d0 + s.len()], s);
                }
            }
        }
    }
}

/// Slice-level col2im: scatter `[n*oh*ow, c*kh*kw]` gradients onto a zeroed
/// `[n, c, h, w]` buffer. The scatter never crosses an image boundary, so
/// per-image parallelism preserves each element's serial accumulation order.
fn col2im_into(
    dst: &mut [f32],
    src: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let per_img_src = oh * ow * c * kh * kw;
    debug_assert_eq!(dst.len(), n * c * h * w);
    if par_enabled() && dst.len() >= PAR_COL2IM_MIN_ELEMS && n > 1 {
        dst.par_chunks_mut(c * h * w).enumerate().for_each(|(ni, img)| {
            col2im_image(
                img,
                &src[ni * per_img_src..(ni + 1) * per_img_src],
                (c, h, w),
                kh,
                kw,
                spec,
            );
        });
    } else {
        for (ni, img) in dst.chunks_mut(c * h * w).enumerate() {
            col2im_image(
                img,
                &src[ni * per_img_src..(ni + 1) * per_img_src],
                (c, h, w),
                kh,
                kw,
                spec,
            );
        }
    }
}

/// Fold patch-row gradients back onto the input: inverse scatter of
/// [`im2col`] (overlapping patches accumulate).
pub fn col2im(
    cols: &Tensor,
    input_shape: &[usize],
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Tensor {
    let [n, c, h, w] = [input_shape[0], input_shape[1], input_shape[2], input_shape[3]];
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let row_len = c * kh * kw;
    assert_eq!(cols.shape(), &[n * oh * ow, row_len], "col2im shape mismatch");
    let mut out = vec![0.0f32; n * c * h * w];
    col2im_into(&mut out, cols.data(), (n, c, h, w), kh, kw, spec);
    Tensor::from_vec(out, input_shape)
}

// Per-thread scratch workspace backing the self-contained [`conv2d`] /
// [`conv2d_backward`] entries: the grow-once buffers are reused across
// calls instead of reallocated, but the geometry key is *invalidated on
// every borrow* so no call ever reuses another call's columns — the
// self-contained entries keep their recompute-everything semantics (and
// their bits) exactly.
thread_local! {
    static SCRATCH_WS: RefCell<ConvWorkspace> = RefCell::new(ConvWorkspace::new());
}

/// Run `f` with the thread's scratch conv workspace, key-invalidated.
/// Falls back to a fresh workspace if the scratch one is already borrowed
/// (re-entrant use through a panic handler or nested call).
fn with_scratch_ws<R>(f: impl FnOnce(&mut ConvWorkspace) -> R) -> R {
    SCRATCH_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => {
            ws.invalidate();
            f(&mut ws)
        }
        Err(_) => f(&mut ConvWorkspace::new()),
    })
}

/// Forward convolution: `x [n,c,h,w]`, `weight [o,c,kh,kw]`, `bias [o]`
/// → `[n,o,oh,ow]`. Self-contained variant of [`conv2d_ws`] (borrows a
/// per-thread scratch workspace whose geometry key is always cleared, so
/// the backward pass will recompute im2col; only the allocations persist).
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: &Tensor, spec: ConvSpec) -> Tensor {
    with_scratch_ws(|ws| conv2d_ws(x, weight, bias, spec, ws))
}

/// Forward convolution through a per-layer workspace: the im2col columns
/// and the pre-permute GEMM product live in `ws` and are reused by the next
/// [`conv2d_backward_ws`] on the same geometry (and by every later step).
pub fn conv2d_ws(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: ConvSpec,
    ws: &mut ConvWorkspace,
) -> Tensor {
    let [n, c, h, w] = dims4(x);
    let [o, c2, kh, kw] = dims4(weight);
    assert_eq!(c, c2, "conv2d channel mismatch: input {c}, weight {c2}");
    assert_eq!(bias.shape(), &[o], "bias shape");
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let rows = n * oh * ow;
    let row_len = c * kh * kw;

    let mode = kernel_mode();
    if mode == KernelMode::Naive {
        // Retained pre-overhaul path: fresh tensors each call, transpose
        // materialized inside matmul_a_bt's reference kernel.
        ws.invalidate();
        let cols = im2col(x, kh, kw, spec);
        let w_flat = Tensor::from_vec(weight.data().to_vec(), &[o, row_len]);
        let prod = matmul_a_bt(&cols, &w_flat);
        return permute_bias(prod.data(), bias.data(), n, o, oh, ow);
    }

    ensure(&mut ws.cols, rows * row_len);
    im2col_t_into(&mut ws.cols[..rows * row_len], x.data(), (n, c, h, w), kh, kw, spec);
    ws.key = Some(ConvKey { x_shape: [n, c, h, w], kh, kw, spec });

    // prodᵀ = w_flat · colsᵀ -> [o, rows], with w_flat read straight out of
    // the weight tensor (its [o,c,kh,kw] data is already [o, c*kh*kw]
    // row-major) and the columns built tap-major by im2col, so neither GEMM
    // operand needs a transpose pass. The output channel count is typically
    // the *small* dimension, so putting it on m keeps the SIMD lanes running
    // along the thousands of patch rows — and turns the NCHW permute below
    // into contiguous per-plane copies. Per element the product is the same
    // ascending-k chain as `cols · w_flatᵀ`, so the bits match the naive
    // path.
    ensure(&mut ws.prod, o * rows);
    gemm_tiled(
        &mut ws.prod[..o * rows],
        o,
        rows,
        row_len,
        weight.data(),
        false,
        &ws.cols[..rows * row_len],
        false,
        mode_isa(mode),
    );
    let p = &ws.prod[..o * rows];
    let ohw = oh * ow;
    let mut out = vec![0.0f32; n * o * ohw];
    for ni in 0..n {
        for oi in 0..o {
            let src = &p[oi * rows + ni * ohw..oi * rows + (ni + 1) * ohw];
            let dst = &mut out[(ni * o + oi) * ohw..(ni * o + oi + 1) * ohw];
            let bv = bias.data()[oi];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s + bv;
            }
        }
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// Permute `[n*oh*ow, o]` → `[n, o, oh, ow]` and add the per-channel bias
/// (naive-path layout).
fn permute_bias(p: &[f32], b: &[f32], n: usize, o: usize, oh: usize, ow: usize) -> Tensor {
    let mut out = vec![0.0f32; n * o * oh * ow];
    for ni in 0..n {
        for s in 0..oh * ow {
            let src_row = (ni * oh * ow + s) * o;
            for oi in 0..o {
                out[(ni * o + oi) * oh * ow + s] = p[src_row + oi] + b[oi];
            }
        }
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// Gradients of a convolution.
#[derive(Debug)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[n,c,h,w]`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weights, `[o,c,kh,kw]`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, `[o]`.
    pub db: Tensor,
}

/// Backward convolution given upstream gradient `dout [n,o,oh,ow]`.
/// Self-contained variant of [`conv2d_backward_ws`] (recomputes im2col in
/// the per-thread scratch workspace — reused allocations, never reused
/// columns).
pub fn conv2d_backward(x: &Tensor, weight: &Tensor, dout: &Tensor, spec: ConvSpec) -> Conv2dGrads {
    with_scratch_ws(|ws| conv2d_backward_ws(x, weight, dout, spec, ws))
}

/// Backward convolution through a per-layer workspace. When `ws` still
/// holds the columns of a forward pass over the same geometry (the normal
/// training pattern), the im2col recomputation — one of the two big
/// per-step costs of the old kernel — is skipped entirely.
pub fn conv2d_backward_ws(
    x: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    spec: ConvSpec,
    ws: &mut ConvWorkspace,
) -> Conv2dGrads {
    conv2d_backward_ws_ex(x, weight, dout, spec, ws, true)
}

/// Like [`conv2d_backward_ws`], but with `need_dx = false` the input
/// gradient is not computed and `dx` comes back as zeros. The first layer
/// of a network produces an input gradient nobody consumes; skipping it
/// drops the largest GEMM and the whole col2im fold from that layer's
/// backward pass. Both kernel generations honour the flag identically, so
/// training histories stay bit-identical across modes either way.
pub fn conv2d_backward_ws_ex(
    x: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    spec: ConvSpec,
    ws: &mut ConvWorkspace,
    need_dx: bool,
) -> Conv2dGrads {
    let [n, c, h, w] = dims4(x);
    let [o, _c2, kh, kw] = dims4(weight);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    assert_eq!(dout.shape(), &[n, o, oh, ow], "dout shape");
    let rows = n * oh * ow;
    let row_len = c * kh * kw;

    let mode = kernel_mode();
    if mode == KernelMode::Naive {
        return conv2d_backward_naive(x, weight, dout, spec, (n, c, h, w), (o, kh, kw), need_dx);
    }
    let isa = mode_isa(mode);

    // Gather dout [n,o,oh,ow] into both flat layouts: dflat [rows, o]
    // (patch-major, feeds the dWᵀ product) and dflatᵀ [o, rows]
    // (channel-major — contiguous plane copies — feeds db and the dX
    // product). Together they are two cheap passes over `rows*o` floats and
    // let every GEMM below run transpose-free.
    let ohw = oh * ow;
    ensure(&mut ws.dflat, rows * o);
    ensure(&mut ws.dflat_t, o * rows);
    {
        let d = dout.data();
        let dflat = &mut ws.dflat[..rows * o];
        let dflat_t = &mut ws.dflat_t[..o * rows];
        for ni in 0..n {
            for oi in 0..o {
                let plane = &d[(ni * o + oi) * ohw..(ni * o + oi + 1) * ohw];
                dflat_t[oi * rows + ni * ohw..oi * rows + (ni + 1) * ohw].copy_from_slice(plane);
                let mut di = (ni * ohw) * o + oi;
                for &v in plane {
                    dflat[di] = v;
                    di += o;
                }
            }
        }
    }

    // Reuse forward's columns when they cover this exact geometry.
    let key = ConvKey { x_shape: [n, c, h, w], kh, kw, spec };
    if ws.key != Some(key) {
        ensure(&mut ws.cols, rows * row_len);
        im2col_t_into(&mut ws.cols[..rows * row_len], x.data(), (n, c, h, w), kh, kw, spec);
        ws.key = Some(key);
    }
    let cols_t = &ws.cols[..rows * row_len];
    let dflat = &ws.dflat[..rows * o];
    let dflat_t = &ws.dflat_t[..o * rows];

    // dWᵀ = colsᵀ · dflat -> [c*kh*kw, o], both operands contiguous, then a
    // tiny [row_len, o] transpose into dW. Each dW element is the same
    // ascending patch-row chain as the naive `dflatᵀ · cols` (the two
    // factors per term are merely commuted, which is exact).
    ensure(&mut ws.prod, row_len * o);
    gemm_tiled(&mut ws.prod[..row_len * o], row_len, o, rows, cols_t, false, dflat, false, isa);
    let mut dw = vec![0.0f32; o * row_len];
    for (kk, dwt_row) in ws.prod[..row_len * o].chunks_exact(o).enumerate() {
        for (oi, &v) in dwt_row.iter().enumerate() {
            dw[oi * row_len + kk] = v;
        }
    }
    let dw = Tensor::from_vec(dw, &[o, c, kh, kw]);

    // db = per-channel sums: contiguous row sums of dflatᵀ. This is the
    // one genuine reduction in the conv stack, so it runs through the
    // frozen eight-lane tree of [`simd::sum_lanes8`] — the naive backward
    // replays the *same* tree over the same ascending patch-row sequence
    // (via `sum_lanes8_ref`), keeping the generations bit-identical.
    let mut db = vec![0.0f32; o];
    for (acc, row) in db.iter_mut().zip(dflat_t.chunks(rows)) {
        *acc = simd::sum_lanes8(row);
    }
    let db = Tensor::from_vec(db, &[o]);

    // dX: for stride 1 compute tap-major gradient columns
    // (dcolsᵀ = w_flatᵀ · dflatᵀ) and fold them with the tap-inverted
    // col2im; otherwise patch-major columns and the canonical col2im.
    let mut dx = vec![0.0f32; n * c * h * w];
    if !need_dx {
        return Conv2dGrads { dx: Tensor::from_vec(dx, x.shape()), dw, db };
    }
    ensure(&mut ws.dcols, rows * row_len);
    if spec.stride == 1 {
        gemm_tiled(
            &mut ws.dcols[..rows * row_len],
            row_len,
            rows,
            o,
            weight.data(),
            true,
            dflat_t,
            false,
            isa,
        );
        col2im_t_into(&mut dx, &ws.dcols[..rows * row_len], (n, c, h, w), kh, kw, spec);
    } else {
        gemm_tiled(
            &mut ws.dcols[..rows * row_len],
            rows,
            row_len,
            o,
            dflat,
            false,
            weight.data(),
            false,
            isa,
        );
        col2im_into(&mut dx, &ws.dcols[..rows * row_len], (n, c, h, w), kh, kw, spec);
    }
    let dx = Tensor::from_vec(dx, x.shape());

    Conv2dGrads { dx, dw, db }
}

/// The retained pre-overhaul backward path (fresh tensors, explicit
/// transposed copy in `matmul_at_b`, im2col recomputed from scratch).
fn conv2d_backward_naive(
    x: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    spec: ConvSpec,
    (n, c, h, w): (usize, usize, usize, usize),
    (o, kh, kw): (usize, usize, usize),
    need_dx: bool,
) -> Conv2dGrads {
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let mut dflat = vec![0.0f32; n * oh * ow * o];
    let d = dout.data();
    for ni in 0..n {
        for oi in 0..o {
            for s in 0..oh * ow {
                dflat[(ni * oh * ow + s) * o + oi] = d[(ni * o + oi) * oh * ow + s];
            }
        }
    }
    let dflat = Tensor::from_vec(dflat, &[n * oh * ow, o]);

    let cols = im2col(x, kh, kw, spec);
    let dw = matmul_at_b(&dflat, &cols).reshape(&[o, c, kh, kw]);

    // Same per-channel sequence as the workspace path's contiguous dflatᵀ
    // rows (ascending patch row), fed through the same frozen eight-lane
    // tree — strided gather here, vector loads there, identical bits.
    let dflat_data = dflat.data();
    let rows = n * oh * ow;
    let mut db = vec![0.0f32; o];
    for (oi, acc) in db.iter_mut().enumerate() {
        *acc = simd::sum_lanes8_ref((0..rows).map(|r| dflat_data[r * o + oi]));
    }
    let db = Tensor::from_vec(db, &[o]);

    let dx = if need_dx {
        let w_flat = Tensor::from_vec(weight.data().to_vec(), &[o, c * kh * kw]);
        let dcols = matmul(&dflat, &w_flat);
        col2im(&dcols, x.shape(), kh, kw, spec)
    } else {
        Tensor::zeros(x.shape())
    };

    Conv2dGrads { dx, dw, db }
}

/// Max pooling over one `[h, w]` plane.
fn maxpool_plane(
    out: &mut [f32],
    arg: &mut [usize],
    src: &[f32],
    base: usize,
    (h, w): (usize, usize),
    spec: PoolSpec,
) {
    let conv = ConvSpec { stride: spec.stride, pad: 0 };
    let oh = conv.out_extent(h, spec.size);
    let ow = conv.out_extent(w, spec.size);
    for oy in 0..oh {
        for ox in 0..ow {
            let mut best_idx = (oy * spec.stride) * w + ox * spec.stride;
            let mut best = src[best_idx];
            for ky in 0..spec.size {
                for kx in 0..spec.size {
                    let idx = (oy * spec.stride + ky) * w + (ox * spec.stride + kx);
                    if src[idx] > best {
                        best = src[idx];
                        best_idx = idx;
                    }
                }
            }
            out[oy * ow + ox] = best;
            // The argmax table stores *global* flat indices, as before.
            arg[oy * ow + ox] = base + best_idx;
        }
    }
}

/// Max pooling forward. Returns the pooled tensor and the flat source index
/// each output element selected (for the backward scatter).
pub fn maxpool2d(x: &Tensor, spec: PoolSpec) -> (Tensor, Vec<usize>) {
    let [n, c, h, w] = dims4(x);
    let conv = ConvSpec { stride: spec.stride, pad: 0 };
    let oh = conv.out_extent(h, spec.size);
    let ow = conv.out_extent(w, spec.size);
    let src = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];

    if par_enabled() && x.len() >= PAR_POOL_MIN_ELEMS && n * c > 1 {
        out.par_chunks_mut(oh * ow).zip(arg.par_chunks_mut(oh * ow)).enumerate().for_each(
            |(pi, (op, ap))| {
                let base = pi * h * w;
                maxpool_plane(op, ap, &src[base..base + h * w], base, (h, w), spec);
            },
        );
    } else {
        for (pi, (op, ap)) in out.chunks_mut(oh * ow).zip(arg.chunks_mut(oh * ow)).enumerate() {
            let base = pi * h * w;
            maxpool_plane(op, ap, &src[base..base + h * w], base, (h, w), spec);
        }
    }
    (Tensor::from_vec(out, &[n, c, oh, ow]), arg)
}

/// Max pooling backward: route each output gradient to its argmax source.
///
/// The argmax produced by [`maxpool2d`] never points outside its own
/// `[h, w]` plane, so the scatter partitions exactly per plane and the
/// parallel path preserves every element's serial accumulation order.
pub fn maxpool2d_backward(dout: &Tensor, arg: &[usize], input_shape: &[usize]) -> Tensor {
    assert_eq!(dout.len(), arg.len(), "argmax table length");
    let [n, c, h, w] = [input_shape[0], input_shape[1], input_shape[2], input_shape[3]];
    let plane = h * w;
    let out_plane = dout.len() / (n * c).max(1);
    let mut dx = vec![0.0f32; input_shape.iter().product()];
    if par_enabled() && dx.len() >= PAR_POOL_MIN_ELEMS && n * c > 1 {
        let d = dout.data();
        dx.par_chunks_mut(plane).enumerate().for_each(|(pi, img)| {
            let (g, a) = (
                &d[pi * out_plane..(pi + 1) * out_plane],
                &arg[pi * out_plane..(pi + 1) * out_plane],
            );
            for (&gv, &idx) in g.iter().zip(a) {
                img[idx - pi * plane] += gv;
            }
        });
    } else {
        for (&g, &idx) in dout.data().iter().zip(arg) {
            dx[idx] += g;
        }
    }
    Tensor::from_vec(dx, input_shape)
}

/// Average pooling over one `[h, w]` plane.
fn avgpool_plane(out: &mut [f32], src: &[f32], (h, w): (usize, usize), spec: PoolSpec) {
    let conv = ConvSpec { stride: spec.stride, pad: 0 };
    let oh = conv.out_extent(h, spec.size);
    let ow = conv.out_extent(w, spec.size);
    let norm = 1.0 / (spec.size * spec.size) as f32;
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = 0.0f32;
            for ky in 0..spec.size {
                for kx in 0..spec.size {
                    acc += src[(oy * spec.stride + ky) * w + (ox * spec.stride + kx)];
                }
            }
            out[oy * ow + ox] = acc * norm;
        }
    }
}

/// Average pooling forward (used as global average pooling in ResNet50 by
/// setting the window to the full spatial extent).
pub fn avgpool2d(x: &Tensor, spec: PoolSpec) -> Tensor {
    let [n, c, h, w] = dims4(x);
    let conv = ConvSpec { stride: spec.stride, pad: 0 };
    let oh = conv.out_extent(h, spec.size);
    let ow = conv.out_extent(w, spec.size);
    let src = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    if par_enabled() && x.len() >= PAR_POOL_MIN_ELEMS && n * c > 1 {
        out.par_chunks_mut(oh * ow).enumerate().for_each(|(pi, op)| {
            avgpool_plane(op, &src[pi * h * w..(pi + 1) * h * w], (h, w), spec);
        });
    } else {
        for (pi, op) in out.chunks_mut(oh * ow).enumerate() {
            avgpool_plane(op, &src[pi * h * w..(pi + 1) * h * w], (h, w), spec);
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Average pooling backward: spread each output gradient uniformly over its
/// window. Windows may overlap (stride < size); accumulation per plane runs
/// in the canonical (oy, ox, ky, kx) order regardless of parallelism.
pub fn avgpool2d_backward(dout: &Tensor, input_shape: &[usize], spec: PoolSpec) -> Tensor {
    let [n, c, h, w] = [input_shape[0], input_shape[1], input_shape[2], input_shape[3]];
    let [n2, c2, oh, ow] = dims4(dout);
    assert_eq!((n, c), (n2, c2), "avgpool2d_backward batch/channel mismatch");
    let norm = 1.0 / (spec.size * spec.size) as f32;
    let mut dx = vec![0.0f32; input_shape.iter().product()];
    let d = dout.data();

    let plane_job = |(pi, img): (usize, &mut [f32])| {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = d[(pi * oh + oy) * ow + ox] * norm;
                for ky in 0..spec.size {
                    for kx in 0..spec.size {
                        img[(oy * spec.stride + ky) * w + (ox * spec.stride + kx)] += g;
                    }
                }
            }
        }
    };

    if par_enabled() && dx.len() >= PAR_POOL_MIN_ELEMS && n * c > 1 {
        dx.par_chunks_mut(h * w).enumerate().for_each(plane_job);
    } else {
        dx.chunks_mut(h * w).enumerate().for_each(plane_job);
    }
    Tensor::from_vec(dx, input_shape)
}

fn dims4(t: &Tensor) -> [usize; 4] {
    let s = t.shape();
    assert_eq!(s.len(), 4, "expected rank-4 tensor, got {s:?}");
    [s[0], s[1], s[2], s[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (quadruple-loop) convolution as the reference implementation.
    fn conv2d_naive(x: &Tensor, weight: &Tensor, bias: &Tensor, spec: ConvSpec) -> Tensor {
        let [n, c, h, w] = dims4(x);
        let [o, _, kh, kw] = dims4(weight);
        let oh = spec.out_extent(h, kh);
        let ow = spec.out_extent(w, kw);
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for ni in 0..n {
            for oi in 0..o {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.data()[oi];
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += x.at(&[ni, ci, iy as usize, ix as usize])
                                        * weight.at(&[oi, ci, ky, kx]);
                                }
                            }
                        }
                        *out.at_mut(&[ni, oi, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    fn seq_tensor(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|i| ((i * 37 % 23) as f32 - 11.0) / 7.0).collect(), shape)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!((x - y).abs() <= tol, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn conv_matches_naive_no_pad() {
        let x = seq_tensor(&[2, 3, 6, 6]);
        let w = seq_tensor(&[4, 3, 3, 3]);
        let b = seq_tensor(&[4]);
        let spec = ConvSpec { stride: 1, pad: 0 };
        assert_close(&conv2d(&x, &w, &b, spec), &conv2d_naive(&x, &w, &b, spec), 1e-4);
    }

    #[test]
    fn conv_matches_naive_with_pad_and_stride() {
        let x = seq_tensor(&[1, 2, 7, 7]);
        let w = seq_tensor(&[3, 2, 3, 3]);
        let b = seq_tensor(&[3]);
        for spec in [
            ConvSpec { stride: 1, pad: 1 },
            ConvSpec { stride: 2, pad: 1 },
            ConvSpec { stride: 2, pad: 0 },
            ConvSpec { stride: 3, pad: 2 },
        ] {
            assert_close(&conv2d(&x, &w, &b, spec), &conv2d_naive(&x, &w, &b, spec), 1e-4);
        }
    }

    #[test]
    fn conv_1x1_kernel() {
        let x = seq_tensor(&[1, 4, 5, 5]);
        let w = seq_tensor(&[2, 4, 1, 1]);
        let b = Tensor::zeros(&[2]);
        let spec = ConvSpec { stride: 1, pad: 0 };
        assert_close(&conv2d(&x, &w, &b, spec), &conv2d_naive(&x, &w, &b, spec), 1e-4);
    }

    #[test]
    fn conv_backward_matches_numeric_gradient() {
        let x = seq_tensor(&[1, 2, 5, 5]);
        let w = seq_tensor(&[2, 2, 3, 3]);
        let b = seq_tensor(&[2]);
        let spec = ConvSpec { stride: 1, pad: 1 };
        // Loss = sum(conv output); dout = ones.
        let out = conv2d(&x, &w, &b, spec);
        let dout = Tensor::full(out.shape(), 1.0);
        let grads = conv2d_backward(&x, &w, &dout, spec);

        let eps = 1e-2f32;
        // Check a scattering of weight gradients numerically.
        for &flat in &[0usize, 5, 17, 35] {
            let mut wp = w.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.data_mut()[flat] -= eps;
            let num = (conv2d(&x, &wp, &b, spec).sum() - conv2d(&x, &wm, &b, spec).sum())
                / (2.0 * eps as f64);
            let ana = grads.dw.data()[flat] as f64;
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dw[{flat}]: {num} vs {ana}");
        }
        // And input gradients.
        for &flat in &[0usize, 12, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (conv2d(&xp, &w, &b, spec).sum() - conv2d(&xm, &w, &b, spec).sum())
                / (2.0 * eps as f64);
            let ana = grads.dx.data()[flat] as f64;
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dx[{flat}]: {num} vs {ana}");
        }
        // Bias gradient of a sum-loss is the number of output positions.
        let per_channel = (out.len() / 2) as f32;
        for &g in grads.db.data() {
            assert!((g - per_channel).abs() < 1e-3);
        }
    }

    #[test]
    fn workspace_path_is_bit_identical_and_reuses_columns() {
        let x = seq_tensor(&[2, 3, 8, 8]);
        let w = seq_tensor(&[4, 3, 3, 3]);
        let b = seq_tensor(&[4]);
        let spec = ConvSpec { stride: 1, pad: 1 };
        let plain_out = conv2d(&x, &w, &b, spec);
        let dout = seq_tensor(plain_out.shape());
        let plain = conv2d_backward(&x, &w, &dout, spec);

        let mut ws = ConvWorkspace::new();
        let ws_out = conv2d_ws(&x, &w, &b, spec, &mut ws);
        assert_eq!(plain_out, ws_out);
        if crate::kernel_mode() != KernelMode::Naive {
            assert!(ws.key.is_some(), "forward must record its geometry");
            // Poison the input: backward must NOT re-read it when the key
            // matches, proving the columns are reused.
            let poisoned = Tensor::full(x.shape(), 1234.5);
            let reused = conv2d_backward_ws(&poisoned, &w, &dout, spec, &mut ws);
            assert_eq!(plain.dw, reused.dw);
            assert_eq!(plain.db, reused.db);
            assert_eq!(plain.dx, reused.dx);
        }
        // And on a cold workspace the backward recomputes columns itself.
        let mut cold = ConvWorkspace::new();
        let fresh = conv2d_backward_ws(&x, &w, &dout, spec, &mut cold);
        assert_eq!(plain.dw, fresh.dw);
        assert_eq!(plain.dx, fresh.dx);
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> — the defining property of the
        // scatter/gather pair used by backward.
        let x = seq_tensor(&[1, 2, 5, 5]);
        let spec = ConvSpec { stride: 2, pad: 1 };
        let cols = im2col(&x, 3, 3, spec);
        let y = seq_tensor(cols.shape());
        let lhs: f64 = cols.data().iter().zip(y.data()).map(|(&a, &b)| (a * b) as f64).sum();
        let folded = col2im(&y, x.shape(), 3, 3, spec);
        let rhs: f64 = x.data().iter().zip(folded.data()).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_handles_pad_wider_than_kernel_step() {
        // pad 2 with a 3-wide kernel: whole rows of some patches are
        // padding; the clipped-copy path must zero them all.
        let x = seq_tensor(&[1, 1, 4, 4]);
        let spec = ConvSpec { stride: 3, pad: 2 };
        let cols = im2col(&x, 3, 3, spec);
        // First patch row: receptive field starts at (-2, -2); only source
        // (0, 0) is inside, at patch position (2, 2).
        let first = &cols.data()[..9];
        assert_eq!(&first[..8], &[0.0; 8]);
        assert_eq!(first[8], x.at(&[0, 0, 0, 0]));
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 3.0, //
                4.0, 0.0, 1.0, 2.0, //
                7.0, 1.0, 0.0, 1.0, //
                2.0, 3.0, 4.0, 9.0,
            ],
            &[1, 1, 4, 4],
        );
        let (out, arg) = maxpool2d(&x, PoolSpec { size: 2, stride: 2 });
        assert_eq!(out.data(), &[4.0, 5.0, 7.0, 9.0]);
        let dout = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let dx = maxpool2d_backward(&dout, &arg, x.shape());
        assert_eq!(dx.at(&[0, 0, 1, 0]), 1.0); // the 4.0
        assert_eq!(dx.at(&[0, 0, 0, 2]), 2.0); // the 5.0
        assert_eq!(dx.at(&[0, 0, 2, 0]), 3.0); // the 7.0
        assert_eq!(dx.at(&[0, 0, 3, 3]), 4.0); // the 9.0
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn maxpool_argmax_is_global_across_planes() {
        // Two planes: each argmax must carry its plane's base offset.
        let x = Tensor::from_vec((0..32).map(|v| v as f32).collect(), &[1, 2, 4, 4]);
        let (_, arg) = maxpool2d(&x, PoolSpec { size: 2, stride: 2 });
        assert!(arg[..4].iter().all(|&i| i < 16));
        assert!(arg[4..].iter().all(|&i| (16..32).contains(&i)));
    }

    #[test]
    fn avgpool_global() {
        let x = seq_tensor(&[2, 3, 4, 4]);
        let out = avgpool2d(&x, PoolSpec { size: 4, stride: 4 });
        assert_eq!(out.shape(), &[2, 3, 1, 1]);
        // First channel average.
        let manual: f32 = x.data()[..16].iter().sum::<f32>() / 16.0;
        assert!((out.data()[0] - manual).abs() < 1e-5);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let spec = PoolSpec { size: 4, stride: 4 };
        let dout = Tensor::full(&[1, 1, 1, 1], 16.0);
        let dx = avgpool2d_backward(&dout, &[1, 1, 4, 4], spec);
        assert!(dx.data().iter().all(|&g| (g - 1.0).abs() < 1e-6));
        // Overlapping windows accumulate.
        let spec = PoolSpec { size: 2, stride: 1 };
        let dout = Tensor::full(&[1, 1, 3, 3], 4.0);
        let dx = avgpool2d_backward(&dout, &[1, 1, 4, 4], spec);
        // Center cells are covered by 4 windows, corners by 1.
        assert_eq!(dx.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(dx.at(&[0, 0, 1, 1]), 4.0);
    }

    #[test]
    fn out_extent_formula() {
        let s = ConvSpec { stride: 2, pad: 1 };
        assert_eq!(s.out_extent(32, 3), 16);
        let s1 = ConvSpec { stride: 1, pad: 1 };
        assert_eq!(s1.out_extent(32, 3), 32); // "same" conv
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn kernel_too_large_panics() {
        ConvSpec { stride: 1, pad: 0 }.out_extent(2, 5);
    }
}
