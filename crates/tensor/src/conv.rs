//! Convolution and pooling, NCHW layout.
//!
//! Convolution is im2col + matmul: unfold every receptive field into a row,
//! multiply by the flattened kernel matrix, fold the result back. Backward
//! reuses the same machinery (col2im scatters gradient patches). All
//! parallelism is inherited from [`crate::matmul`], keeping determinism.

use crate::{matmul, matmul_a_bt, matmul_at_b, Tensor};

/// Stride/padding configuration of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Step between receptive fields.
    pub stride: usize,
    /// Zero-padding applied to all four borders.
    pub pad: usize,
}

impl ConvSpec {
    /// Output spatial extent for an input extent and kernel extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        assert!(
            input + 2 * self.pad >= kernel,
            "kernel {kernel} larger than padded input {}",
            input + 2 * self.pad
        );
        (input + 2 * self.pad - kernel) / self.stride + 1
    }
}

/// Pooling window configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Window edge length.
    pub size: usize,
    /// Step between windows.
    pub stride: usize,
}

/// Unfold `x: [n, c, h, w]` into `[n * oh * ow, c * kh * kw]` patch rows.
pub fn im2col(x: &Tensor, kh: usize, kw: usize, spec: ConvSpec) -> Tensor {
    let [n, c, h, w] = dims4(x);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let row_len = c * kh * kw;
    let mut out = vec![0.0f32; n * oh * ow * row_len];
    let src = x.data();

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * row_len;
                for ci in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue; // zero padding: leave zeros
                        }
                        for kx in 0..kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let src_idx = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            let dst_idx = row + (ci * kh + ky) * kw + kx;
                            out[dst_idx] = src[src_idx];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n * oh * ow, row_len])
}

/// Fold patch-row gradients back onto the input: inverse scatter of
/// [`im2col`] (overlapping patches accumulate).
pub fn col2im(
    cols: &Tensor,
    input_shape: &[usize],
    kh: usize,
    kw: usize,
    spec: ConvSpec,
) -> Tensor {
    let [n, c, h, w] = [input_shape[0], input_shape[1], input_shape[2], input_shape[3]];
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let row_len = c * kh * kw;
    assert_eq!(cols.shape(), &[n * oh * ow, row_len], "col2im shape mismatch");
    let src = cols.data();
    let mut out = vec![0.0f32; n * c * h * w];

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * row_len;
                for ci in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let dst_idx = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            out[dst_idx] += src[row + (ci * kh + ky) * kw + kx];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, input_shape)
}

/// Forward convolution: `x [n,c,h,w]`, `weight [o,c,kh,kw]`, `bias [o]`
/// → `[n,o,oh,ow]`.
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: &Tensor, spec: ConvSpec) -> Tensor {
    let [n, c, h, w] = dims4(x);
    let [o, c2, kh, kw] = dims4(weight);
    assert_eq!(c, c2, "conv2d channel mismatch: input {c}, weight {c2}");
    assert_eq!(bias.shape(), &[o], "bias shape");
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);

    let cols = im2col(x, kh, kw, spec); // [n*oh*ow, c*kh*kw]
    let w_flat = Tensor::from_vec(weight.data().to_vec(), &[o, c * kh * kw]);
    let prod = matmul_a_bt(&cols, &w_flat); // [n*oh*ow, o]

    // Permute [n*oh*ow, o] -> [n, o, oh, ow] and add bias.
    let mut out = vec![0.0f32; n * o * oh * ow];
    let p = prod.data();
    let b = bias.data();
    for ni in 0..n {
        for s in 0..oh * ow {
            let src_row = (ni * oh * ow + s) * o;
            for oi in 0..o {
                out[(ni * o + oi) * oh * ow + s] = p[src_row + oi] + b[oi];
            }
        }
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// Gradients of a convolution.
#[derive(Debug)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[n,c,h,w]`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weights, `[o,c,kh,kw]`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, `[o]`.
    pub db: Tensor,
}

/// Backward convolution given upstream gradient `dout [n,o,oh,ow]`.
pub fn conv2d_backward(x: &Tensor, weight: &Tensor, dout: &Tensor, spec: ConvSpec) -> Conv2dGrads {
    let [n, c, h, w] = dims4(x);
    let [o, _c2, kh, kw] = dims4(weight);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    assert_eq!(dout.shape(), &[n, o, oh, ow], "dout shape");

    // Permute dout [n,o,oh,ow] -> flat [n*oh*ow, o].
    let mut dflat = vec![0.0f32; n * oh * ow * o];
    let d = dout.data();
    for ni in 0..n {
        for oi in 0..o {
            for s in 0..oh * ow {
                dflat[(ni * oh * ow + s) * o + oi] = d[(ni * o + oi) * oh * ow + s];
            }
        }
    }
    let dflat = Tensor::from_vec(dflat, &[n * oh * ow, o]);

    let cols = im2col(x, kh, kw, spec); // [n*oh*ow, c*kh*kw]

    // dW = dflatᵀ · cols -> [o, c*kh*kw]
    let dw = matmul_at_b(&dflat, &cols).reshape(&[o, c, kh, kw]);

    // db = column sums of dflat.
    let mut db = vec![0.0f32; o];
    for row in dflat.data().chunks(o) {
        for (acc, &v) in db.iter_mut().zip(row) {
            *acc += v;
        }
    }
    let db = Tensor::from_vec(db, &[o]);

    // dX = col2im(dflat · w_flat).
    let w_flat = Tensor::from_vec(weight.data().to_vec(), &[o, c * kh * kw]);
    let dcols = matmul(&dflat, &w_flat); // [n*oh*ow, c*kh*kw]
    let dx = col2im(&dcols, x.shape(), kh, kw, spec);

    Conv2dGrads { dx, dw, db }
}

/// Max pooling forward. Returns the pooled tensor and the flat source index
/// each output element selected (for the backward scatter).
pub fn maxpool2d(x: &Tensor, spec: PoolSpec) -> (Tensor, Vec<usize>) {
    let [n, c, h, w] = dims4(x);
    let conv = ConvSpec { stride: spec.stride, pad: 0 };
    let oh = conv.out_extent(h, spec.size);
    let ow = conv.out_extent(w, spec.size);
    let src = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];

    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_idx = base + (oy * spec.stride) * w + ox * spec.stride;
                    let mut best = src[best_idx];
                    for ky in 0..spec.size {
                        for kx in 0..spec.size {
                            let idx = base + (oy * spec.stride + ky) * w + (ox * spec.stride + kx);
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o_idx = ((ni * c + ci) * oh + oy) * ow + ox;
                    out[o_idx] = best;
                    arg[o_idx] = best_idx;
                }
            }
        }
    }
    (Tensor::from_vec(out, &[n, c, oh, ow]), arg)
}

/// Max pooling backward: route each output gradient to its argmax source.
pub fn maxpool2d_backward(dout: &Tensor, arg: &[usize], input_shape: &[usize]) -> Tensor {
    assert_eq!(dout.len(), arg.len(), "argmax table length");
    let mut dx = vec![0.0f32; input_shape.iter().product()];
    for (&g, &idx) in dout.data().iter().zip(arg) {
        dx[idx] += g;
    }
    Tensor::from_vec(dx, input_shape)
}

/// Average pooling forward (used as global average pooling in ResNet50 by
/// setting the window to the full spatial extent).
pub fn avgpool2d(x: &Tensor, spec: PoolSpec) -> Tensor {
    let [n, c, h, w] = dims4(x);
    let conv = ConvSpec { stride: spec.stride, pad: 0 };
    let oh = conv.out_extent(h, spec.size);
    let ow = conv.out_extent(w, spec.size);
    let src = x.data();
    let norm = 1.0 / (spec.size * spec.size) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];

    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..spec.size {
                        for kx in 0..spec.size {
                            acc +=
                                src[base + (oy * spec.stride + ky) * w + (ox * spec.stride + kx)];
                        }
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = acc * norm;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

fn dims4(t: &Tensor) -> [usize; 4] {
    let s = t.shape();
    assert_eq!(s.len(), 4, "expected rank-4 tensor, got {s:?}");
    [s[0], s[1], s[2], s[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (quadruple-loop) convolution as the reference implementation.
    fn conv2d_naive(x: &Tensor, weight: &Tensor, bias: &Tensor, spec: ConvSpec) -> Tensor {
        let [n, c, h, w] = dims4(x);
        let [o, _, kh, kw] = dims4(weight);
        let oh = spec.out_extent(h, kh);
        let ow = spec.out_extent(w, kw);
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for ni in 0..n {
            for oi in 0..o {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.data()[oi];
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += x.at(&[ni, ci, iy as usize, ix as usize])
                                        * weight.at(&[oi, ci, ky, kx]);
                                }
                            }
                        }
                        *out.at_mut(&[ni, oi, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    fn seq_tensor(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|i| ((i * 37 % 23) as f32 - 11.0) / 7.0).collect(), shape)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!((x - y).abs() <= tol, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn conv_matches_naive_no_pad() {
        let x = seq_tensor(&[2, 3, 6, 6]);
        let w = seq_tensor(&[4, 3, 3, 3]);
        let b = seq_tensor(&[4]);
        let spec = ConvSpec { stride: 1, pad: 0 };
        assert_close(&conv2d(&x, &w, &b, spec), &conv2d_naive(&x, &w, &b, spec), 1e-4);
    }

    #[test]
    fn conv_matches_naive_with_pad_and_stride() {
        let x = seq_tensor(&[1, 2, 7, 7]);
        let w = seq_tensor(&[3, 2, 3, 3]);
        let b = seq_tensor(&[3]);
        for spec in [
            ConvSpec { stride: 1, pad: 1 },
            ConvSpec { stride: 2, pad: 1 },
            ConvSpec { stride: 2, pad: 0 },
            ConvSpec { stride: 3, pad: 2 },
        ] {
            assert_close(&conv2d(&x, &w, &b, spec), &conv2d_naive(&x, &w, &b, spec), 1e-4);
        }
    }

    #[test]
    fn conv_1x1_kernel() {
        let x = seq_tensor(&[1, 4, 5, 5]);
        let w = seq_tensor(&[2, 4, 1, 1]);
        let b = Tensor::zeros(&[2]);
        let spec = ConvSpec { stride: 1, pad: 0 };
        assert_close(&conv2d(&x, &w, &b, spec), &conv2d_naive(&x, &w, &b, spec), 1e-4);
    }

    #[test]
    fn conv_backward_matches_numeric_gradient() {
        let x = seq_tensor(&[1, 2, 5, 5]);
        let w = seq_tensor(&[2, 2, 3, 3]);
        let b = seq_tensor(&[2]);
        let spec = ConvSpec { stride: 1, pad: 1 };
        // Loss = sum(conv output); dout = ones.
        let out = conv2d(&x, &w, &b, spec);
        let dout = Tensor::full(out.shape(), 1.0);
        let grads = conv2d_backward(&x, &w, &dout, spec);

        let eps = 1e-2f32;
        // Check a scattering of weight gradients numerically.
        for &flat in &[0usize, 5, 17, 35] {
            let mut wp = w.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.data_mut()[flat] -= eps;
            let num = (conv2d(&x, &wp, &b, spec).sum() - conv2d(&x, &wm, &b, spec).sum())
                / (2.0 * eps as f64);
            let ana = grads.dw.data()[flat] as f64;
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dw[{flat}]: {num} vs {ana}");
        }
        // And input gradients.
        for &flat in &[0usize, 12, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (conv2d(&xp, &w, &b, spec).sum() - conv2d(&xm, &w, &b, spec).sum())
                / (2.0 * eps as f64);
            let ana = grads.dx.data()[flat] as f64;
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dx[{flat}]: {num} vs {ana}");
        }
        // Bias gradient of a sum-loss is the number of output positions.
        let per_channel = (out.len() / 2) as f32;
        for &g in grads.db.data() {
            assert!((g - per_channel).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> — the defining property of the
        // scatter/gather pair used by backward.
        let x = seq_tensor(&[1, 2, 5, 5]);
        let spec = ConvSpec { stride: 2, pad: 1 };
        let cols = im2col(&x, 3, 3, spec);
        let y = seq_tensor(cols.shape());
        let lhs: f64 = cols.data().iter().zip(y.data()).map(|(&a, &b)| (a * b) as f64).sum();
        let folded = col2im(&y, x.shape(), 3, 3, spec);
        let rhs: f64 = x.data().iter().zip(folded.data()).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 3.0, //
                4.0, 0.0, 1.0, 2.0, //
                7.0, 1.0, 0.0, 1.0, //
                2.0, 3.0, 4.0, 9.0,
            ],
            &[1, 1, 4, 4],
        );
        let (out, arg) = maxpool2d(&x, PoolSpec { size: 2, stride: 2 });
        assert_eq!(out.data(), &[4.0, 5.0, 7.0, 9.0]);
        let dout = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let dx = maxpool2d_backward(&dout, &arg, x.shape());
        assert_eq!(dx.at(&[0, 0, 1, 0]), 1.0); // the 4.0
        assert_eq!(dx.at(&[0, 0, 0, 2]), 2.0); // the 5.0
        assert_eq!(dx.at(&[0, 0, 2, 0]), 3.0); // the 7.0
        assert_eq!(dx.at(&[0, 0, 3, 3]), 4.0); // the 9.0
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn avgpool_global() {
        let x = seq_tensor(&[2, 3, 4, 4]);
        let out = avgpool2d(&x, PoolSpec { size: 4, stride: 4 });
        assert_eq!(out.shape(), &[2, 3, 1, 1]);
        // First channel average.
        let manual: f32 = x.data()[..16].iter().sum::<f32>() / 16.0;
        assert!((out.data()[0] - manual).abs() < 1e-5);
    }

    #[test]
    fn out_extent_formula() {
        let s = ConvSpec { stride: 2, pad: 1 };
        assert_eq!(s.out_extent(32, 3), 16);
        let s1 = ConvSpec { stride: 1, pad: 1 };
        assert_eq!(s1.out_extent(32, 3), 32); // "same" conv
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn kernel_too_large_panics() {
        ConvSpec { stride: 1, pad: 0 }.out_extent(2, 5);
    }
}
