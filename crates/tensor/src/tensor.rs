//! The core tensor type: a shape and a flat row-major `f32` buffer.

use std::fmt;

/// A dense, row-major, `f32` n-dimensional array.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// A tensor filled with one value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![value; shape.iter().product()] }
    }

    /// Build from a flat buffer; the length must match the shape product.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} != shape product {:?}",
            data.len(),
            shape
        );
        Tensor { shape: shape.to_vec(), data }
    }

    /// Shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at a multi-index (rank must match).
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Mutable element at a multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data[i]
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "rank mismatch");
        let mut flat = 0usize;
        for (k, (&i, &d)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < d, "index {i} out of bounds for dim {k} of extent {d}");
            flat = flat * d + i;
        }
        flat
    }

    /// Elementwise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise in-place subtraction.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in sub");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Row-wise argmax of a `[rows, cols]` matrix.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows needs a matrix");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        (0..rows)
            .map(|r| {
                let row = &self.data[r * cols..(r + 1) * cols];
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

impl fmt::Debug for Tensor {
    /// Keep Debug small: shape plus an element preview, not megabytes of floats.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<String> = self.data.iter().take(8).map(|v| format!("{v:.4}")).collect();
        write!(
            f,
            "Tensor{:?} [{}{}]",
            self.shape,
            preview.join(", "),
            if self.data.len() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 3]);
        t.at(&[0, 3]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.scale(3.0);
        assert_eq!(a.data(), &[3.0, 6.0]);
        let m = a.map(|v| v * v);
        assert_eq!(m.data(), &[9.0, 36.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
        t.data_mut()[1] = f32::INFINITY;
        assert!(t.has_non_finite());
    }

    #[test]
    fn argmax_rows_picks_first_on_ties() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.5, 0.5, 0.2], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn debug_is_compact() {
        let t = Tensor::zeros(&[100, 100]);
        let s = format!("{t:?}");
        assert!(s.len() < 200, "{s}");
    }
}
