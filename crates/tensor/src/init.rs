//! Deterministic weight initializers.
//!
//! Both draw from a [`DetRng`] stream, so a (seed, architecture) pair always
//! produces bit-identical initial weights — the starting point of the
//! paper's deterministic-training requirement.

use crate::Tensor;
use sefi_rng::DetRng;

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
/// Standard for ReLU networks (AlexNet/VGG/ResNet all use ReLU).
pub fn he_normal(shape: &[usize], fan_in: usize, rng: &mut DetRng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt();
    let mut t = Tensor::zeros(shape);
    rng.fill_normal(t.data_mut(), 0.0, std);
    t
}

/// Xavier (Glorot) uniform initialization:
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut DetRng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let mut t = Tensor::zeros(shape);
    rng.fill_uniform(t.data_mut(), -bound, bound);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_is_deterministic() {
        let mut r1 = DetRng::new(42);
        let mut r2 = DetRng::new(42);
        let a = he_normal(&[64, 3, 3, 3], 27, &mut r1);
        let b = he_normal(&[64, 3, 3, 3], 27, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn he_normal_std_is_right() {
        let mut rng = DetRng::new(7);
        let fan_in = 128;
        let t = he_normal(&[100_000], fan_in, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / t.len() as f64;
        let want = 2.0 / fan_in as f64;
        assert!(mean.abs() < 0.01);
        assert!((var - want).abs() < want * 0.05, "var {var} want {want}");
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = DetRng::new(9);
        let t = xavier_uniform(&[10_000], 100, 50, &mut rng);
        let bound = (6.0f64 / 150.0).sqrt() as f32;
        assert!(t.data().iter().all(|&v| v >= -bound && v < bound));
        // Spread should actually use the range.
        assert!(t.data().iter().any(|&v| v > bound * 0.9));
        assert!(t.data().iter().any(|&v| v < -bound * 0.9));
    }
}
