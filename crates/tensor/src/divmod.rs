//! Branch-free integer division by a runtime constant (Lemire's fastdiv).
//!
//! Convolution lowering decomposes a flat tap index `col` into
//! `(channel, ky, kx)` coordinates with two divisions and two remainders
//! per lane. The divisors (`kw`, `kh*kw`) are loop constants, so the
//! division can be replaced by a precomputed magic multiply:
//! with `m = floor(2^64 / d) + 1`, the quotient of any 32-bit `n` is the
//! high 64 bits of `m * n` (Lemire, Kaser & Kurz, 2019). This is exact
//! for every `n < 2^32` and every divisor `d > 1`; `d == 1` would
//! overflow the magic constant and is special-cased.

/// Precomputed magic-multiply divisor for exact `u32` division/remainder.
///
/// Construction costs one 64-bit division; each subsequent [`div`] is a
/// single widening multiply and shift, and [`div_rem`] adds one multiply
/// and subtract — no data-dependent branches, no hardware divide.
///
/// [`div`]: FastDivmod::div
/// [`div_rem`]: FastDivmod::div_rem
#[derive(Clone, Copy, Debug)]
pub struct FastDivmod {
    d: u32,
    /// `floor(2^64 / d) + 1`; `0` is the sentinel for `d == 1`.
    m: u64,
}

impl FastDivmod {
    /// Precomputes the magic constant for divisor `d`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u32) -> Self {
        assert!(d > 0, "FastDivmod divisor must be non-zero");
        let m = if d == 1 { 0 } else { (u64::MAX / u64::from(d)) + 1 };
        FastDivmod { d, m }
    }

    /// Returns `n / d` exactly.
    #[inline(always)]
    pub fn div(self, n: u32) -> u32 {
        if self.d == 1 {
            n
        } else {
            ((u128::from(self.m) * u128::from(n)) >> 64) as u32
        }
    }

    /// Returns `(n / d, n % d)` exactly.
    #[inline(always)]
    pub fn div_rem(self, n: u32) -> (u32, u32) {
        let q = self.div(n);
        (q, n - q * self.d)
    }

    /// The divisor this instance was built for.
    #[inline(always)]
    pub fn divisor(self) -> u32 {
        self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hardware_division_on_edge_cases() {
        let divisors = [1u32, 2, 3, 7, 9, 16, 25, 144, 1000, 65_535, 65_536, 1 << 30, u32::MAX];
        let numerators = [
            0u32,
            1,
            2,
            3,
            99,
            144,
            145,
            65_535,
            1 << 20,
            (1 << 31) - 1,
            1 << 31,
            u32::MAX - 1,
            u32::MAX,
        ];
        for &d in &divisors {
            let fd = FastDivmod::new(d);
            for &n in &numerators {
                let (q, r) = fd.div_rem(n);
                assert_eq!(q, n / d, "q mismatch for {n} / {d}");
                assert_eq!(r, n % d, "r mismatch for {n} % {d}");
            }
        }
    }

    #[test]
    fn exhaustive_small_grid() {
        for d in 1u32..=64 {
            let fd = FastDivmod::new(d);
            for n in 0u32..=4096 {
                assert_eq!(fd.div(n), n / d);
                assert_eq!(fd.div_rem(n).1, n % d);
            }
        }
    }

    #[test]
    fn pseudo_random_sweep() {
        // xorshift over (n, d) pairs; exactness must hold everywhere.
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..20_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let n = (s >> 32) as u32;
            let d = ((s as u32) | 1).max(1);
            let fd = FastDivmod::new(d);
            let (q, r) = fd.div_rem(n);
            assert_eq!(q, n / d);
            assert_eq!(r, n % d);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_divisor_panics() {
        let _ = FastDivmod::new(0);
    }
}
