//! Kernel-generation dispatch and per-op parallelism thresholds.
//!
//! Two kernel generations coexist:
//!
//! * **Tiled** (default) — the blocked, packed, register-tiled GEMM of
//!   [`crate::kernel`] plus workspace-reusing convolutions.
//! * **Naive** — the original scalar reference kernels, retained verbatim.
//!   They define the canonical per-element accumulation order; the tiled
//!   kernels are property-tested to be *bit-identical* to them.
//!
//! The mode is selected once per process from the `SEFI_KERNELS`
//! environment variable (`tiled` | `naive`) and can be overridden at run
//! time with [`set_kernel_mode`] — benches use this to measure both
//! generations in one binary, and experiment tests use it to assert that
//! campaign results do not depend on the kernel generation.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel generation executes tensor ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Blocked/packed/register-tiled kernels with workspace reuse.
    Tiled,
    /// The retained scalar reference kernels (the pre-overhaul hot path).
    Naive,
}

/// 0 = uninitialized, 1 = tiled, 2 = naive.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The active kernel generation.
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Tiled,
        2 => KernelMode::Naive,
        _ => {
            let mode = match std::env::var("SEFI_KERNELS").as_deref() {
                Ok("naive") => KernelMode::Naive,
                _ => KernelMode::Tiled,
            };
            set_kernel_mode(mode);
            mode
        }
    }
}

/// Force a kernel generation for the rest of the process (overrides the
/// `SEFI_KERNELS` environment variable).
pub fn set_kernel_mode(mode: KernelMode) {
    MODE.store(
        match mode {
            KernelMode::Tiled => 1,
            KernelMode::Naive => 2,
        },
        Ordering::Relaxed,
    );
}

/// True when parallel dispatch can help at all: more than one rayon worker.
/// On a single-core host every op stays on the serial path, which also keeps
/// steady-state training free of the per-dispatch chunk allocations the
/// thread-pool shim makes.
pub(crate) fn par_enabled() -> bool {
    rayon::current_num_threads() > 1
}

// Per-op parallel-dispatch thresholds. The old code used one global
// `PAR_MIN_FLOPS = 64³` for every op; these are calibrated per op from
// `bench_kernels` timings (see DESIGN.md "Kernel architecture"): an op goes
// parallel when its serial cost clearly exceeds a few thread-dispatch
// round-trips (~20 µs each on the shim's scoped-thread pool).

/// GEMM flops (`2·m·n·k` halved to `m·n·k` for comparison with the old
/// constant) above which row-blocks are distributed over the pool.
pub(crate) const PAR_GEMM_MIN_FLOPS: usize = 48 * 48 * 48;

/// `im2col` output elements above which patch rows are written in parallel.
pub(crate) const PAR_IM2COL_MIN_ELEMS: usize = 1 << 15;

/// `col2im` *input-gradient* elements above which per-image scatters run in
/// parallel (the scatter is independent per image, never across images).
pub(crate) const PAR_COL2IM_MIN_ELEMS: usize = 1 << 15;

/// Pooling elements (input side) above which per-plane kernels run in
/// parallel.
pub(crate) const PAR_POOL_MIN_ELEMS: usize = 1 << 15;

/// GEMM flops (`m·n·k`) at or below which the no-pack strip kernel is used:
/// for problems this small the packed path's extra passes over A and B cost
/// more than the cache locality they buy. Small conv layers (a handful of
/// output channels over a few thousand patch rows) live well below this.
pub(crate) const SMALL_GEMM_MAX_FLOPS: usize = 1 << 19;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip() {
        let initial = kernel_mode();
        set_kernel_mode(KernelMode::Naive);
        assert_eq!(kernel_mode(), KernelMode::Naive);
        set_kernel_mode(KernelMode::Tiled);
        assert_eq!(kernel_mode(), KernelMode::Tiled);
        set_kernel_mode(initial);
    }
}
