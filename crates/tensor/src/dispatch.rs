//! Kernel-generation dispatch and per-op parallelism thresholds.
//!
//! Three kernel generations coexist:
//!
//! * **Simd** (default) — the blocked, packed, register-tiled GEMM of
//!   [`crate::kernel`] driving the runtime-dispatched AVX-512/AVX2
//!   broadcast-FMA microkernels of [`crate::simd`], plus
//!   workspace-reusing convolutions. On hosts without AVX2 the same
//!   driver runs the scalar lane-emulating microkernels, which produce
//!   identical bits (see DESIGN.md §6).
//! * **Tiled** — the same blocked/packed driver forced onto the scalar
//!   lane-emulating microkernels regardless of host features. This is
//!   the portable reference implementation of the lane-stable contract.
//! * **Naive** — simple triple-loop kernels restating each element's
//!   chain with no blocking at all. All three modes are property-tested
//!   to be *bit-identical*.
//!
//! The mode is selected once per process from the `SEFI_KERNELS`
//! environment variable (`simd` | `tiled` | `naive`) and can be
//! overridden at run time with [`set_kernel_mode`] — benches use this to
//! measure the generations in one binary, and experiment tests use it to
//! assert that campaign results do not depend on the kernel generation.

use crate::simd::{active_isa, Isa};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel generation executes tensor ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Blocked/packed kernels on the widest ISA the host supports
    /// (AVX-512 → AVX2+FMA → scalar lane emulation), workspace reuse.
    Simd,
    /// The same blocked/packed driver pinned to the scalar
    /// lane-emulating microkernels (portable reference).
    Tiled,
    /// Unblocked triple-loop kernels restating the same per-element
    /// accumulation chains (the auditability baseline).
    Naive,
}

/// 0 = uninitialized, 1 = simd, 2 = tiled, 3 = naive.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The active kernel generation.
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Simd,
        2 => KernelMode::Tiled,
        3 => KernelMode::Naive,
        _ => {
            let mode = match std::env::var("SEFI_KERNELS").as_deref() {
                Ok("naive") => KernelMode::Naive,
                Ok("tiled") => KernelMode::Tiled,
                _ => KernelMode::Simd,
            };
            set_kernel_mode(mode);
            mode
        }
    }
}

/// Force a kernel generation for the rest of the process (overrides the
/// `SEFI_KERNELS` environment variable).
pub fn set_kernel_mode(mode: KernelMode) {
    MODE.store(
        match mode {
            KernelMode::Simd => 1,
            KernelMode::Tiled => 2,
            KernelMode::Naive => 3,
        },
        Ordering::Relaxed,
    );
}

/// The microkernel ISA a blocked-path mode runs on: `Simd` takes the
/// widest ISA the host offers, `Tiled` pins the scalar lane emulation.
/// (`Naive` never reaches the blocked driver.)
pub(crate) fn mode_isa(mode: KernelMode) -> Isa {
    match mode {
        KernelMode::Simd => active_isa(),
        KernelMode::Tiled | KernelMode::Naive => Isa::Scalar,
    }
}

/// True when parallel dispatch can help at all: more than one rayon worker.
/// On a single-core host every op stays on the serial path, which also keeps
/// steady-state training free of the per-dispatch chunk allocations the
/// thread-pool shim makes.
pub(crate) fn par_enabled() -> bool {
    rayon::current_num_threads() > 1
}

// Per-op parallel-dispatch thresholds, calibrated per op from
// `bench_kernels` timings (see DESIGN.md "Kernel architecture"): an op goes
// parallel when its serial cost clearly exceeds a few thread-dispatch
// round-trips (~20 µs each on the shim's scoped-thread pool). The SIMD
// microkernels retired ~3x more flops per cycle than the scalar tiled
// generation they replaced, so the GEMM/im2col/col2im crossovers moved up
// by about that factor (PR 8) — a problem that amortized the dispatch cost
// at 38 GFLOPS no longer does at 110.

/// GEMM flops (`2·m·n·k` halved to `m·n·k` for comparison with the old
/// constant) above which row-blocks are distributed over the pool.
/// Was `48³` for the scalar tiled kernels.
pub(crate) const PAR_GEMM_MIN_FLOPS: usize = 72 * 72 * 72;

/// `im2col` output elements above which patch rows are written in parallel
/// (stride-1 lanes are now `memcpy`s, so serial fills got cheaper).
pub(crate) const PAR_IM2COL_MIN_ELEMS: usize = 1 << 16;

/// `col2im` *input-gradient* elements above which per-image scatters run in
/// parallel (the scatter is independent per image, never across images).
/// The contiguous tap adds are vectorized, halving the serial cost.
pub(crate) const PAR_COL2IM_MIN_ELEMS: usize = 1 << 16;

/// Pooling elements (input side) above which per-plane kernels run in
/// parallel.
pub(crate) const PAR_POOL_MIN_ELEMS: usize = 1 << 15;

/// GEMM flops (`m·n·k`) at or below which the no-pack block kernel is used:
/// for problems this small the packed path's extra passes over A and B cost
/// more than the cache locality they buy. Small conv layers (a handful of
/// output channels over a few thousand patch rows) live well below this.
/// The no-pack kernel vectorized along with the packed one, so the
/// crossover stayed put.
pub(crate) const SMALL_GEMM_MAX_FLOPS: usize = 1 << 19;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip() {
        let initial = kernel_mode();
        set_kernel_mode(KernelMode::Naive);
        assert_eq!(kernel_mode(), KernelMode::Naive);
        set_kernel_mode(KernelMode::Tiled);
        assert_eq!(kernel_mode(), KernelMode::Tiled);
        set_kernel_mode(KernelMode::Simd);
        assert_eq!(kernel_mode(), KernelMode::Simd);
        set_kernel_mode(initial);
    }

    #[test]
    fn tiled_mode_pins_scalar_isa() {
        assert_eq!(mode_isa(KernelMode::Tiled), Isa::Scalar);
        assert_eq!(mode_isa(KernelMode::Naive), Isa::Scalar);
    }
}
