//! Matrix products — the computational core of dense and (via im2col)
//! convolutional layers.
//!
//! Three kernel generations live here (selected by [`crate::kernel_mode`]):
//!
//! * the **simd** path routes all three product shapes through
//!   [`crate::kernel`]'s blocked/packed GEMM on the widest host ISA,
//!   folding operand transposes into panel packing so nothing is
//!   materialized;
//! * the **tiled** path is the same driver pinned to the scalar
//!   lane-emulating microkernels (the portable reference);
//! * the **naive** path is simple triple-loop kernels restating the same
//!   per-element fma chains with no blocking (`*_naive`).
//!
//! All generations compute every output element as one fused multiply-add
//! chain over `k` in ascending order, by exactly one task — results are
//! bitwise identical to each other and for any thread count (the
//! determinism contract training depends on; property-tested in
//! `tests/proptests.rs` and `tests/determinism.rs`).

use crate::dispatch::{kernel_mode, mode_isa, par_enabled, KernelMode};
use crate::kernel::gemm_tiled;
use crate::Tensor;
use rayon::prelude::*;

/// Threshold below which parallel dispatch costs more than it saves
/// (the original single global threshold, kept for the naive kernels).
const NAIVE_PAR_MIN_FLOPS: usize = 64 * 64 * 64;

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A");
    let (k2, n) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    match kernel_mode() {
        KernelMode::Naive => matmul_naive(a, b),
        mode => {
            let mut out = vec![0.0f32; m * n];
            gemm_tiled(&mut out, m, n, k, a.data(), false, b.data(), false, mode_isa(mode));
            Tensor::from_vec(out, &[m, n])
        }
    }
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (weight-gradient shape).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = mat_dims(a, "A");
    let (k2, n) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul_at_b inner dims: {k} vs {k2}");
    match kernel_mode() {
        KernelMode::Naive => matmul_at_b_naive(a, b),
        mode => {
            // The transpose is folded into A-panel packing — no transposed
            // copy of A is ever materialized (the old kernel allocated one
            // per call on the dW hot path).
            let mut out = vec![0.0f32; m * n];
            gemm_tiled(&mut out, m, n, k, a.data(), true, b.data(), false, mode_isa(mode));
            Tensor::from_vec(out, &[m, n])
        }
    }
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` (input-gradient shape).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A");
    let (n, k2) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul_a_bt inner dims: {k} vs {k2}");
    match kernel_mode() {
        KernelMode::Naive => matmul_a_bt_naive(a, b),
        mode => {
            let mut out = vec![0.0f32; m * n];
            gemm_tiled(&mut out, m, n, k, a.data(), false, b.data(), true, mode_isa(mode));
            Tensor::from_vec(out, &[m, n])
        }
    }
}

/// `C = A · B` with the unblocked scalar reference kernel (k-outer loop,
/// running row accumulators, one `mul_add` per chain link). Kept as the
/// simplest restatement of the lane-stable accumulation order — the
/// bit-exactness oracle for the blocked/vectorized GEMM.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A");
    let (k2, n) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();

    let row_job = |(r, out_row): (usize, &mut [f32])| {
        let a_row = &a_data[r * k..(r + 1) * k];
        // k-outer loop with a running row accumulator keeps inner loops
        // contiguous over B's rows (cache-friendly) while preserving a
        // fixed per-element accumulation order.
        for (kk, &a_v) in a_row.iter().enumerate() {
            let b_row = &b_data[kk * n..(kk + 1) * n];
            for (o, &b_v) in out_row.iter_mut().zip(b_row) {
                *o = a_v.mul_add(b_v, *o);
            }
        }
    };

    if par_enabled() && m * n * k >= NAIVE_PAR_MIN_FLOPS {
        out.par_chunks_mut(n).enumerate().for_each(row_job);
    } else {
        out.chunks_mut(n).enumerate().for_each(row_job);
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` with the retained reference kernel: materializes `Aᵀ` and
/// calls [`matmul_naive`], exactly as the pre-overhaul code did.
pub fn matmul_at_b_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, _m) = mat_dims(a, "A");
    let (k2, _n) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul_at_b inner dims: {k} vs {k2}");
    let a_t = transpose2d(a);
    matmul_naive(&a_t, b)
}

/// `C = A · Bᵀ` with the retained reference kernel (per-element dot
/// products over contiguous rows of both operands).
pub fn matmul_a_bt_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A");
    let (n, k2) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul_a_bt inner dims: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();

    let row_job = |(r, out_row): (usize, &mut [f32])| {
        let a_row = &a_data[r * k..(r + 1) * k];
        for (c, o) in out_row.iter_mut().enumerate() {
            let b_row = &b_data[c * k..(c + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc = x.mul_add(y, acc);
            }
            *o = acc;
        }
    };

    if par_enabled() && m * n * k >= NAIVE_PAR_MIN_FLOPS {
        out.par_chunks_mut(n).enumerate().for_each(row_job);
    } else {
        out.chunks_mut(n).enumerate().for_each(row_job);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transpose a `[r, c]` matrix into `[c, r]`.
pub fn transpose2d(a: &Tensor) -> Tensor {
    let (r, c) = mat_dims(a, "A");
    let src = a.data();
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = src[i * c + j];
        }
    }
    Tensor::from_vec(out, &[c, r])
}

pub(crate) fn mat_dims(t: &Tensor, name: &str) -> (usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 2, "{name} must be a matrix, got shape {s:?}");
    (s[0], s[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn small_matmul() {
        // [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_matmul() {
        let a = t(&[1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]); // 2x3
        let b = t(&[1.0, 2.0, 0.0, 1.0, 4.0, 0.0], &[3, 2]); // 3x2
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[9.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, -1.0, 2.0, 0.5, 0.0, 3.0], &[3, 2]);
        assert_eq!(matmul_at_b(&a, &b), matmul(&transpose2d(&a), &b));
        let a2 = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b2 = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul_a_bt(&a2, &b2), matmul(&a2, &transpose2d(&b2)));
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(transpose2d(&transpose2d(&a)), a);
    }

    #[test]
    fn large_matmul_is_deterministic_across_runs() {
        // Crosses the parallel threshold; re-running must give bit-equal
        // results (fixed accumulation order per element).
        let n = 80;
        let data: Vec<f32> =
            (0..n * n).map(|i| ((i * 2654435761usize) % 1000) as f32 / 997.0).collect();
        let a = Tensor::from_vec(data.clone(), &[n, n]);
        let b = Tensor::from_vec(data, &[n, n]);
        let c1 = matmul(&a, &b);
        let c2 = matmul(&a, &b);
        assert_eq!(c1, c2);
    }

    #[test]
    fn tiled_and_naive_agree_bitwise_on_all_three_products() {
        let dims = [(17usize, 19usize, 23usize), (64, 64, 64), (1, 5, 9)];
        for (m, n, k) in dims {
            let mk: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32 - 6.0) / 5.0).collect();
            let kn: Vec<f32> = (0..k * n).map(|i| ((i % 11) as f32 - 5.0) / 3.0).collect();
            let a = Tensor::from_vec(mk.clone(), &[m, k]);
            let b = Tensor::from_vec(kn.clone(), &[k, n]);
            let at = Tensor::from_vec(mk.clone(), &[k, m]);
            let bt = Tensor::from_vec(kn.clone(), &[n, k]);
            for (tiled, naive) in [
                (matmul(&a, &b), matmul_naive(&a, &b)),
                (matmul_at_b(&at, &b), matmul_at_b_naive(&at, &b)),
                (matmul_a_bt(&a, &bt), matmul_a_bt_naive(&a, &bt)),
            ] {
                // matmul_at_b reinterprets mk as [k, m] — shapes line up as
                // long as both generations see the same buffers.
                assert_eq!(
                    tiled.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    naive.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "m={m} n={n} k={k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dim_mismatch_panics() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[1.0, 2.0, 3.0], &[3, 1]);
        matmul(&a, &b);
    }
}
