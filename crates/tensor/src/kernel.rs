//! The blocked, packed, register-tiled GEMM driver and its microkernel.
//!
//! # Determinism contract
//!
//! Every output element is a single running `f32` sum over `k` in canonical
//! ascending order, built from separate multiply and add (never fused, never
//! split into partial accumulators). Blocking only changes *which* elements
//! are in flight together, never the order of any element's own chain:
//!
//! * m/n tiling assigns each element to exactly one microkernel tile;
//! * k blocking (`KC`) pauses a chain by storing the running sum to `C` and
//!   resumes it by reloading — an exact f32 round-trip;
//! * parallelism distributes whole row-blocks; no two tasks touch the same
//!   output element, and no reduction ever crosses a task boundary.
//!
//! Consequently the result is bit-identical for any thread count and
//! bit-identical to the retained naive reference kernels, which is enforced
//! by property tests (`tests/proptests.rs`).
//!
//! Problems at or below [`SMALL_GEMM_MAX_FLOPS`] skip packing entirely and
//! run a direct strip kernel ([`gemm_small`]) — same per-element chain, so
//! the same bits — because at that size the packing passes dominate.

use crate::dispatch::{par_enabled, PAR_GEMM_MIN_FLOPS, SMALL_GEMM_MAX_FLOPS};
use crate::pack::{pack_a, pack_b, packed_a_len, packed_b_len, KC, MC, MR, NC, NR};
use crate::workspace;
use rayon::prelude::*;

/// Full-tile microkernel: resume the MR×NR running sums from `c`, add
/// `kc` k-steps from the packed panels, store the sums back.
///
/// # Safety
/// `a` must hold `kc*MR` floats, `b` `kc*NR` floats, and `c` must address a
/// full MR×NR tile with row stride `ldc`.
unsafe fn kern_full(a: *const f32, b: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate() {
        acc_row.copy_from_slice(std::slice::from_raw_parts(c.add(i * ldc), NR));
    }
    let mut ap = a;
    let mut bp = b;
    // One k-step: acc[i][j] += a[i] * b[j], separate mul and add. The
    // macro keeps the 4× unroll below as straight-line repetitions of the
    // same accumulator chain (no partial sums).
    macro_rules! step {
        () => {{
            let bv: &[f32; NR] = &*(bp as *const [f32; NR]);
            for (i, acc_row) in acc.iter_mut().enumerate() {
                let av = *ap.add(i);
                for (acc_v, &b_v) in acc_row.iter_mut().zip(bv) {
                    *acc_v += av * b_v;
                }
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }};
    }
    let mut rem = kc;
    while rem >= 4 {
        step!();
        step!();
        step!();
        step!();
        rem -= 4;
    }
    while rem > 0 {
        step!();
        rem -= 1;
    }
    for (i, acc_row) in acc.iter().enumerate() {
        std::slice::from_raw_parts_mut(c.add(i * ldc), NR).copy_from_slice(acc_row);
    }
}

/// Edge-tile microkernel: same chain as [`kern_full`] but only the valid
/// `mr_eff×nr_eff` region of `c` is loaded and stored. Padded panel lanes
/// contribute exact zeros and are discarded.
///
/// # Safety
/// `a` must hold `kc*MR` floats, `b` `kc*NR` floats, and `c` must address an
/// `mr_eff×nr_eff` tile with row stride `ldc`.
unsafe fn kern_edge(
    a: *const f32,
    b: *const f32,
    kc: usize,
    c: *mut f32,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate().take(mr_eff) {
        for (j, acc_v) in acc_row.iter_mut().enumerate().take(nr_eff) {
            *acc_v = *c.add(i * ldc + j);
        }
    }
    let mut ap = a;
    let mut bp = b;
    for _ in 0..kc {
        let bv: &[f32; NR] = &*(bp as *const [f32; NR]);
        // Only the valid rows — lanes beyond nr_eff still compute (they
        // hold exact zeros from packing and are never stored), but rows
        // beyond mr_eff would be pure waste.
        for (i, acc_row) in acc.iter_mut().enumerate().take(mr_eff) {
            let av = *ap.add(i);
            for (acc_v, &b_v) in acc_row.iter_mut().zip(bv) {
                *acc_v += av * b_v;
            }
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
        for (j, acc_v) in acc_row.iter().enumerate().take(nr_eff) {
            *c.add(i * ldc + j) = *acc_v;
        }
    }
}

/// Narrow-tile microkernel for `nr_eff` well below [`NR`] (e.g. the first
/// conv layer's 2-channel output, or a classifier head): accumulators are
/// laid out column-major so the SIMD lanes run down the [`MR`] *rows*
/// instead of across mostly-padding columns. Per element the chain is the
/// same `acc += a*b` in ascending k as every other kernel.
///
/// # Safety
/// Same contract as [`kern_edge`].
unsafe fn kern_narrow(
    a: *const f32,
    b: *const f32,
    kc: usize,
    c: *mut f32,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0.0f32; MR]; NR];
    for (j, acc_col) in acc.iter_mut().enumerate().take(nr_eff) {
        for (i, acc_v) in acc_col.iter_mut().enumerate().take(mr_eff) {
            *acc_v = *c.add(i * ldc + j);
        }
    }
    let mut ap = a;
    let mut bp = b;
    for _ in 0..kc {
        let av: &[f32; MR] = &*(ap as *const [f32; MR]);
        for (j, acc_col) in acc.iter_mut().enumerate().take(nr_eff) {
            let bv = *bp.add(j);
            for (acc_v, &a_v) in acc_col.iter_mut().zip(av) {
                *acc_v += a_v * bv;
            }
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    for (j, acc_col) in acc.iter().enumerate().take(nr_eff) {
        for (i, acc_v) in acc_col.iter().enumerate().take(mr_eff) {
            *c.add(i * ldc + j) = *acc_v;
        }
    }
}

/// Strip width of the no-pack small-problem kernel.
const JB: usize = 16;

/// Direct GEMM for problems at or below [`SMALL_GEMM_MAX_FLOPS`]: no
/// packing, no k blocking — each output strip's running sums live in
/// registers for the whole (short) k loop. The per-element chain is the
/// same ascending-k `acc += a*b` as the packed path, so the bits match.
///
/// `b` must already be in `[k, n]` row-major layout (see [`gemm_small`]).
fn gemm_small_rows(out: &mut [f32], m: usize, n: usize, k: usize, a: &[f32], ta: bool, b: &[f32]) {
    // Tiny-k fast path (e.g. gradient columns over a handful of output
    // channels): accumulate whole B rows into the output row, one pass per
    // k. The caller pre-zeroed `out`, and an f32 accumulator in memory
    // rounds identically to one in a register, so each element still runs
    // its canonical ascending-k chain.
    if k <= NARROW_MAX {
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for kk in 0..k {
                let aik = if ta { a[kk * m + i] } else { a[i * k + kk] };
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &b_v) in out_row.iter_mut().zip(brow) {
                    *o += aik * b_v;
                }
            }
        }
        return;
    }
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jb = (n - j0).min(JB);
            let mut acc = [0.0f32; JB];
            // One k loop body per (full-strip?, transposed-A?) combination so
            // the A access pattern and the strip width are both loop-invariant.
            macro_rules! kloop {
                ($aiter:expr) => {
                    if jb == JB {
                        for (aik, brow) in $aiter.zip(b.chunks_exact(n)) {
                            let bv: &[f32; JB] = brow[j0..j0 + JB].try_into().unwrap();
                            for (acc_v, &b_v) in acc.iter_mut().zip(bv) {
                                *acc_v += aik * b_v;
                            }
                        }
                    } else {
                        for (aik, brow) in $aiter.zip(b.chunks_exact(n)) {
                            for (acc_v, &b_v) in acc[..jb].iter_mut().zip(&brow[j0..j0 + jb]) {
                                *acc_v += aik * b_v;
                            }
                        }
                    }
                };
            }
            if ta {
                kloop!(a[i..].iter().step_by(m).copied());
            } else {
                kloop!(a[i * k..(i + 1) * k].iter().copied());
            }
            out_row[j0..j0 + jb].copy_from_slice(&acc[..jb]);
            j0 += JB;
        }
    }
}

/// Widest output the no-pack narrow kernel handles.
const NARROW_MAX: usize = 8;

/// Row-blocked no-pack kernel for very narrow outputs (`n <= NARROW_MAX`,
/// e.g. a weight gradient over a handful of output channels): each block of
/// `IB` A-rows shares the `n`-wide B row loaded per k-step, giving `IB*n`
/// independent accumulation chains of instruction-level parallelism.
/// Monomorphized over `N` so the inner loops fully unroll. Per element the
/// chain is the canonical ascending-k `acc += a*b`.
fn narrow_rows<const N: usize>(out: &mut [f32], m: usize, k: usize, a: &[f32], b: &[f32]) {
    const IB: usize = 4;
    debug_assert_eq!(b.len(), k * N);
    let mut i0 = 0;
    while i0 + IB <= m {
        let mut acc = [[0.0f32; N]; IB];
        let r0 = a[i0 * k..(i0 + 1) * k].iter();
        let r1 = a[(i0 + 1) * k..(i0 + 2) * k].iter();
        let r2 = a[(i0 + 2) * k..(i0 + 3) * k].iter();
        let r3 = a[(i0 + 3) * k..(i0 + 4) * k].iter();
        for ((((brow, &a0), &a1), &a2), &a3) in b.chunks_exact(N).zip(r0).zip(r1).zip(r2).zip(r3) {
            let brow: &[f32; N] = brow.try_into().unwrap();
            for (j, &b_v) in brow.iter().enumerate() {
                acc[0][j] += a0 * b_v;
                acc[1][j] += a1 * b_v;
                acc[2][j] += a2 * b_v;
                acc[3][j] += a3 * b_v;
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            out[(i0 + r) * N..(i0 + r + 1) * N].copy_from_slice(acc_row);
        }
        i0 += IB;
    }
    for i in i0..m {
        let mut acc = [0.0f32; N];
        for (brow, &av) in b.chunks_exact(N).zip(a[i * k..(i + 1) * k].iter()) {
            let brow: &[f32; N] = brow.try_into().unwrap();
            for (acc_v, &b_v) in acc.iter_mut().zip(brow) {
                *acc_v += av * b_v;
            }
        }
        out[i * N..(i + 1) * N].copy_from_slice(&acc);
    }
}

/// Small-problem entry: a transposed B would make the k loop stride across
/// rows, so materialize it in `[k, n]` layout into the shared workspace
/// first — `k*n` is tiny for every problem routed here.
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
) {
    if n <= NARROW_MAX && !ta {
        let dispatch = |out: &mut [f32], b: &[f32]| match n {
            1 => narrow_rows::<1>(out, m, k, a, b),
            2 => narrow_rows::<2>(out, m, k, a, b),
            3 => narrow_rows::<3>(out, m, k, a, b),
            4 => narrow_rows::<4>(out, m, k, a, b),
            5 => narrow_rows::<5>(out, m, k, a, b),
            6 => narrow_rows::<6>(out, m, k, a, b),
            7 => narrow_rows::<7>(out, m, k, a, b),
            _ => narrow_rows::<8>(out, m, k, a, b),
        };
        if tb {
            workspace::with_gemm_ws(0, k * n, |_, bt| {
                for (j, bcol) in b.chunks_exact(k).enumerate() {
                    for (kk, &v) in bcol.iter().enumerate() {
                        bt[kk * n + j] = v;
                    }
                }
                dispatch(out, bt);
            });
        } else {
            dispatch(out, b);
        }
        return;
    }
    if tb {
        workspace::with_gemm_ws(0, k * n, |_, bt| {
            // Blocked transpose: a TB-row block of B spans few enough cache
            // lines to stay resident while every k reads through it.
            const TB: usize = 64;
            let mut j0 = 0;
            while j0 < n {
                let jl = (n - j0).min(TB);
                for kk in 0..k {
                    for j in j0..j0 + jl {
                        bt[kk * n + j] = b[j * k + kk];
                    }
                }
                j0 += TB;
            }
            gemm_small_rows(out, m, n, k, a, ta, bt);
        });
    } else {
        gemm_small_rows(out, m, n, k, a, ta, b);
    }
}

/// Compute one row-block (`rows = chunk.len() / n` rows starting at global
/// row `ic0`, which must be MR-aligned) of `C += A·B` from the packed
/// operands, walking jc→pc→jr→ir so every element's chain advances in
/// ascending-k order.
fn row_block(chunk: &mut [f32], ic0: usize, n: usize, k: usize, a_pack: &[f32], b_pack: &[f32]) {
    debug_assert_eq!(ic0 % MR, 0);
    let rows = chunk.len() / n;
    let c_ptr = chunk.as_mut_ptr();
    let mut jc = 0;
    while jc < n {
        let nc = (n - jc).min(NC);
        let mut pc = 0;
        while pc < k {
            let kc = (k - pc).min(KC);
            let mut jr = jc;
            while jr < jc + nc {
                let nr_eff = (n - jr).min(NR);
                let q = jr / NR;
                let b_panel = &b_pack[q * k * NR + pc * NR..];
                let mut ir = 0;
                while ir < rows {
                    let mr_eff = (rows - ir).min(MR);
                    let p = (ic0 + ir) / MR;
                    let a_panel = &a_pack[p * k * MR + pc * MR..];
                    // SAFETY: the packed panels hold at least kc full-width
                    // k-steps past these offsets, and the tile written is
                    // `mr_eff×nr_eff` starting at local row `ir`, column
                    // `jr` — inside this task's chunk by construction.
                    unsafe {
                        let c = c_ptr.add(ir * n + jr);
                        if mr_eff == MR && nr_eff == NR {
                            kern_full(a_panel.as_ptr(), b_panel.as_ptr(), kc, c, n);
                        } else if nr_eff <= NR / 2 && mr_eff > nr_eff {
                            kern_narrow(
                                a_panel.as_ptr(),
                                b_panel.as_ptr(),
                                kc,
                                c,
                                n,
                                mr_eff,
                                nr_eff,
                            );
                        } else {
                            kern_edge(a_panel.as_ptr(), b_panel.as_ptr(), kc, c, n, mr_eff, nr_eff);
                        }
                    }
                    ir += MR;
                }
                jr += NR;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Tiled GEMM entry point: `out = op(A)·op(B)` with `out: [m, n]`,
/// `op(A): [m, k]`, `op(B): [k, n]`; `ta`/`tb` mean the buffer stores the
/// operand transposed (folded into packing — nothing is materialized).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_tiled(
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    if m == 0 || n == 0 {
        return;
    }
    out.fill(0.0);
    if k == 0 {
        return;
    }
    let flops = m * n * k;
    let go_par = par_enabled() && flops >= PAR_GEMM_MIN_FLOPS && m > MC;
    // The strip kernel vectorizes across columns, so it needs a full strip;
    // narrow outputs go to the ILP row-block kernel instead (which reads A
    // rows directly, so it needs them contiguous — no `ta`). Anything else
    // small (8 < n < 16, or narrow with `ta`) takes the packed path.
    if flops <= SMALL_GEMM_MAX_FLOPS && (n >= JB || (n <= NARROW_MAX && !ta)) && !go_par {
        return gemm_small(out, m, n, k, a, ta, b, tb);
    }
    workspace::with_gemm_ws(packed_a_len(m, k), packed_b_len(k, n), |a_pack, b_pack| {
        pack_a(a_pack, a, m, k, ta);
        pack_b(b_pack, b, k, n, tb);
        let a_pack: &[f32] = a_pack;
        let b_pack: &[f32] = b_pack;
        if go_par {
            out.par_chunks_mut(MC * n)
                .enumerate()
                .for_each(|(bi, chunk)| row_block(chunk, bi * MC, n, k, a_pack, b_pack));
        } else {
            for (bi, chunk) in out.chunks_mut(MC * n).enumerate() {
                row_block(chunk, bi * MC, n, k, a_pack, b_pack);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, salt: usize) -> Vec<f32> {
        (0..len).map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) / 7.0).collect()
    }

    fn reference(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn tiled_is_bit_identical_to_reference_on_awkward_shapes() {
        // Shapes straddling MR/NR/KC/MC boundaries, including degenerate 1s.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (MR, NR, 4),
            (MR + 1, NR + 1, KC + 1),
            (MC + 3, NR * 2 + 5, KC - 1),
            (2 * MC, 2 * NR, 2 * KC),
            (3, 70, 129),
            (65, 1, 300),
            (1, 33, 7),
        ] {
            let a = seq(m * k, 1);
            let b = seq(k * n, 2);
            let mut out = vec![f32::NAN; m * n]; // must be fully overwritten
            gemm_tiled(&mut out, m, n, k, &a, false, &b, false);
            let want = reference(&a, &b, m, n, k);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "mismatch at m={m} n={n} k={k}"
            );
        }
    }

    #[test]
    fn transposed_operands_match_materialized_transpose() {
        let (m, n, k) = (13usize, 21usize, 17usize);
        let a = seq(m * k, 3);
        let b = seq(k * n, 4);
        // Store A as [k, m] and B as [n, k].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut bt = vec![0.0f32; k * n];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let mut plain = vec![0.0f32; m * n];
        gemm_tiled(&mut plain, m, n, k, &a, false, &b, false);
        let mut via_ta = vec![0.0f32; m * n];
        gemm_tiled(&mut via_ta, m, n, k, &at, true, &b, false);
        let mut via_tb = vec![0.0f32; m * n];
        gemm_tiled(&mut via_tb, m, n, k, &a, false, &bt, true);
        assert_eq!(plain, via_ta);
        assert_eq!(plain, via_tb);
    }

    #[test]
    fn small_and_packed_paths_agree_bitwise() {
        // A shape routed to the strip kernel by the dispatcher; drive the
        // packed machinery directly on the same inputs and compare bits.
        let (m, n, k) = (67usize, 29usize, 33usize);
        let a = seq(m * k, 5);
        let b = seq(k * n, 6);
        for &(ta, tb) in &[(false, false), (true, false), (false, true)] {
            let (a_buf, b_buf) = {
                let mut at = a.clone();
                let mut bt = b.clone();
                if ta {
                    for i in 0..m {
                        for kk in 0..k {
                            at[kk * m + i] = a[i * k + kk];
                        }
                    }
                }
                if tb {
                    for kk in 0..k {
                        for j in 0..n {
                            bt[j * k + kk] = b[kk * n + j];
                        }
                    }
                }
                (at, bt)
            };
            let mut small = vec![0.0f32; m * n];
            gemm_small(&mut small, m, n, k, &a_buf, ta, &b_buf, tb);
            let mut packed = vec![0.0f32; m * n];
            workspace::with_gemm_ws(packed_a_len(m, k), packed_b_len(k, n), |ap, bp| {
                pack_a(ap, &a_buf, m, k, ta);
                pack_b(bp, &b_buf, k, n, tb);
                for (bi, chunk) in packed.chunks_mut(MC * n).enumerate() {
                    row_block(chunk, bi * MC, n, k, ap, bp);
                }
            });
            assert_eq!(
                small.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                packed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "paths diverge at ta={ta} tb={tb}"
            );
        }
    }

    #[test]
    fn zero_k_zeroes_the_output() {
        let mut out = vec![7.0f32; 6];
        gemm_tiled(&mut out, 2, 3, 0, &[], false, &[], false);
        assert_eq!(out, vec![0.0; 6]);
    }
}
