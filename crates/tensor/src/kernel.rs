//! The blocked, packed, register-tiled GEMM driver and its microkernels.
//!
//! # Determinism contract (lane-stable vectorized order)
//!
//! Every output element is a single fused-multiply-add chain over `k` in
//! canonical ascending order: `c ← fma(a_k, b_k, c)`, never split into
//! partial accumulators. The SIMD microkernels ([`crate::simd`]) are
//! *broadcast-style* — a scalar of A against a vector of B columns — so
//! each output element owns one SIMD lane for its whole chain and the
//! chain never crosses lanes; lane-wise `vfmadd` is IEEE-754-identical to
//! scalar `f32::mul_add`, which is what the scalar kernels in this file
//! use. Hence AVX-512, AVX2, and scalar lane emulation produce the same
//! bits by construction. Blocking only changes *which* elements are in
//! flight together, never the order of any element's own chain:
//!
//! * m/n tiling assigns each element to exactly one microkernel tile;
//! * k blocking (`KC`) pauses a chain by storing the running sum to `C` and
//!   resumes it by reloading — an exact f32 round-trip;
//! * parallelism distributes whole row-blocks; no two tasks touch the same
//!   output element, and no reduction ever crosses a task boundary.
//!
//! Consequently the result is bit-identical for any thread count, any host
//! ISA, and across the `simd`/`tiled`/`naive` kernel modes — enforced by
//! property tests (`tests/determinism.rs`, `tests/proptests.rs`).
//!
//! Problems at or below [`SMALL_GEMM_MAX_FLOPS`] skip packing entirely and
//! run a direct block kernel ([`gemm_small`]) — same per-element chain, so
//! the same bits — because at that size the packing passes dominate.

use crate::dispatch::{par_enabled, PAR_GEMM_MIN_FLOPS, SMALL_GEMM_MAX_FLOPS};
use crate::pack::{pack_a, pack_b, packed_a_len, packed_b_len, KC, MC, MR, NC, NR};
use crate::simd::{self, Isa};
use crate::workspace;
use rayon::prelude::*;

/// Full-tile scalar microkernel: resume the MR×NR running sums from `c`,
/// add `kc` fma chain links from the packed panels, store the sums back.
/// This is the lane-emulating reference for the vector tiles in
/// [`crate::simd`] — same loads, same per-element `mul_add` order.
///
/// # Safety
/// `a` must hold `kc*MR` floats, `b` `kc*NR` floats, and `c` must address a
/// full MR×NR tile with row stride `ldc`.
unsafe fn kern_full(a: *const f32, b: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate() {
        acc_row.copy_from_slice(std::slice::from_raw_parts(c.add(i * ldc), NR));
    }
    let mut ap = a;
    let mut bp = b;
    // One k-step: acc[i][j] = fma(a[i], b[j], acc[i][j]). The macro keeps
    // the 4× unroll below as straight-line repetitions of the same
    // accumulator chain (no partial sums).
    macro_rules! step {
        () => {{
            let bv: &[f32; NR] = &*(bp as *const [f32; NR]);
            for (i, acc_row) in acc.iter_mut().enumerate() {
                let av = *ap.add(i);
                for (acc_v, &b_v) in acc_row.iter_mut().zip(bv) {
                    *acc_v = av.mul_add(b_v, *acc_v);
                }
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }};
    }
    let mut rem = kc;
    while rem >= 4 {
        step!();
        step!();
        step!();
        step!();
        rem -= 4;
    }
    while rem > 0 {
        step!();
        rem -= 1;
    }
    for (i, acc_row) in acc.iter().enumerate() {
        std::slice::from_raw_parts_mut(c.add(i * ldc), NR).copy_from_slice(acc_row);
    }
}

/// Edge-tile scalar microkernel: same chain as [`kern_full`] but only the
/// valid `mr_eff×nr_eff` region of `c` is loaded and stored. Padded panel
/// lanes contribute exact zeros and are discarded.
///
/// # Safety
/// `a` must hold `kc*MR` floats, `b` `kc*NR` floats, and `c` must address an
/// `mr_eff×nr_eff` tile with row stride `ldc`.
unsafe fn kern_edge(
    a: *const f32,
    b: *const f32,
    kc: usize,
    c: *mut f32,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate().take(mr_eff) {
        for (j, acc_v) in acc_row.iter_mut().enumerate().take(nr_eff) {
            *acc_v = *c.add(i * ldc + j);
        }
    }
    let mut ap = a;
    let mut bp = b;
    for _ in 0..kc {
        let bv: &[f32; NR] = &*(bp as *const [f32; NR]);
        // Only the valid rows — lanes beyond nr_eff still compute (they
        // hold exact zeros from packing and are never stored), but rows
        // beyond mr_eff would be pure waste.
        for (i, acc_row) in acc.iter_mut().enumerate().take(mr_eff) {
            let av = *ap.add(i);
            for (acc_v, &b_v) in acc_row.iter_mut().zip(bv) {
                *acc_v = av.mul_add(b_v, *acc_v);
            }
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
        for (j, acc_v) in acc_row.iter().enumerate().take(nr_eff) {
            *c.add(i * ldc + j) = *acc_v;
        }
    }
}

/// Narrow-tile scalar microkernel for `nr_eff` well below [`NR`] (e.g. the
/// first conv layer's 2-channel output, or a classifier head): accumulators
/// are laid out column-major so auto-vectorized lanes run down the [`MR`]
/// *rows* instead of across mostly-padding columns. Per element the chain
/// is the same ascending-k `fma` as every other kernel — the lane-stable
/// contract doesn't care which loop carries it.
///
/// # Safety
/// Same contract as [`kern_edge`].
unsafe fn kern_narrow(
    a: *const f32,
    b: *const f32,
    kc: usize,
    c: *mut f32,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    let mut acc = [[0.0f32; MR]; NR];
    for (j, acc_col) in acc.iter_mut().enumerate().take(nr_eff) {
        for (i, acc_v) in acc_col.iter_mut().enumerate().take(mr_eff) {
            *acc_v = *c.add(i * ldc + j);
        }
    }
    let mut ap = a;
    let mut bp = b;
    for _ in 0..kc {
        let av: &[f32; MR] = &*(ap as *const [f32; MR]);
        for (j, acc_col) in acc.iter_mut().enumerate().take(nr_eff) {
            let bv = *bp.add(j);
            for (acc_v, &a_v) in acc_col.iter_mut().zip(av) {
                *acc_v = a_v.mul_add(bv, *acc_v);
            }
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    for (j, acc_col) in acc.iter().enumerate().take(nr_eff) {
        for (i, acc_v) in acc_col.iter().enumerate().take(mr_eff) {
            *c.add(i * ldc + j) = *acc_v;
        }
    }
}

/// Strip width of the scalar no-pack small-problem kernel.
const JB: usize = 16;

/// Scalar direct GEMM for small problems: no packing, no k blocking — each
/// output strip's running sums live in registers for the whole (short) k
/// loop. The per-element chain is the same ascending-k `fma` as the packed
/// path, so the bits match.
///
/// `b` must already be in `[k, n]` row-major layout (see [`gemm_small`]).
fn gemm_small_rows(out: &mut [f32], m: usize, n: usize, k: usize, a: &[f32], ta: bool, b: &[f32]) {
    // Tiny-k fast path (e.g. gradient columns over a handful of output
    // channels): accumulate whole B rows into the output row, one pass per
    // k. The caller pre-zeroed `out`, and an f32 accumulator in memory
    // rounds identically to one in a register, so each element still runs
    // its canonical ascending-k chain.
    if k <= NARROW_MAX {
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for kk in 0..k {
                let aik = if ta { a[kk * m + i] } else { a[i * k + kk] };
                simd::axpy(Isa::Scalar, out_row, aik, &b[kk * n..(kk + 1) * n]);
            }
        }
        return;
    }
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jb = (n - j0).min(JB);
            let mut acc = [0.0f32; JB];
            // One k loop body per (full-strip?, transposed-A?) combination so
            // the A access pattern and the strip width are both loop-invariant.
            macro_rules! kloop {
                ($aiter:expr) => {
                    if jb == JB {
                        for (aik, brow) in $aiter.zip(b.chunks_exact(n)) {
                            let bv: &[f32; JB] = brow[j0..j0 + JB].try_into().unwrap();
                            for (acc_v, &b_v) in acc.iter_mut().zip(bv) {
                                *acc_v = aik.mul_add(b_v, *acc_v);
                            }
                        }
                    } else {
                        for (aik, brow) in $aiter.zip(b.chunks_exact(n)) {
                            for (acc_v, &b_v) in acc[..jb].iter_mut().zip(&brow[j0..j0 + jb]) {
                                *acc_v = aik.mul_add(b_v, *acc_v);
                            }
                        }
                    }
                };
            }
            if ta {
                kloop!(a[i..].iter().step_by(m).copied());
            } else {
                kloop!(a[i * k..(i + 1) * k].iter().copied());
            }
            out_row[j0..j0 + jb].copy_from_slice(&acc[..jb]);
            j0 += JB;
        }
    }
}

/// Vectorized direct GEMM for small problems: up-to-4-row × vector-width
/// column blocks over the unpacked operands (transposed A is handled with
/// strides, so only a transposed B ever gets materialized). Each element's
/// chain is the same ascending-k fma as everywhere else.
#[allow(clippy::too_many_arguments)]
fn gemm_small_vec(
    isa: Isa,
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: bool,
    b: &[f32],
) {
    debug_assert!(isa != Isa::Scalar);
    let cw = match isa {
        Isa::Avx512 => 32,
        _ => 16,
    };
    let (a_rs, a_cs) = if ta { (1, m) } else { (k, 1) };
    let mut i0 = 0;
    while i0 < m {
        let rows = (m - i0).min(4);
        let a_blk = if ta { &a[i0..] } else { &a[i0 * k..] };
        let mut j0 = 0;
        while j0 < n {
            let ncols = (n - j0).min(cw);
            // SAFETY: the block spans rows i0..i0+rows (≤ m) and columns
            // j0..j0+ncols (≤ n) of `out`; A strides address `a_blk[r*a_rs
            // + kk*a_cs]` for r < rows, kk < k, in-bounds for both layouts;
            // `isa` came from runtime feature detection.
            unsafe {
                let o = out.as_mut_ptr().add(i0 * n + j0);
                let bp = b.as_ptr().add(j0);
                match isa {
                    Isa::Avx512 => simd::small_block_avx512(
                        o,
                        n,
                        a_blk.as_ptr(),
                        a_rs,
                        a_cs,
                        bp,
                        n,
                        rows,
                        ncols,
                        k,
                    ),
                    _ => simd::small_block_avx2(
                        o,
                        n,
                        a_blk.as_ptr(),
                        a_rs,
                        a_cs,
                        bp,
                        n,
                        rows,
                        ncols,
                        k,
                    ),
                }
            }
            j0 += cw;
        }
        i0 += 4;
    }
}

/// Widest output the scalar no-pack narrow kernel handles.
const NARROW_MAX: usize = 8;

/// Row-blocked scalar no-pack kernel for very narrow outputs
/// (`n <= NARROW_MAX`, e.g. a weight gradient over a handful of output
/// channels): each block of `IB` A-rows shares the `n`-wide B row loaded
/// per k-step, giving `IB*n` independent accumulation chains of
/// instruction-level parallelism. Monomorphized over `N` so the inner
/// loops fully unroll. Per element the chain is the canonical ascending-k
/// `fma`.
fn narrow_rows<const N: usize>(out: &mut [f32], m: usize, k: usize, a: &[f32], b: &[f32]) {
    const IB: usize = 4;
    debug_assert_eq!(b.len(), k * N);
    let mut i0 = 0;
    while i0 + IB <= m {
        let mut acc = [[0.0f32; N]; IB];
        let r0 = a[i0 * k..(i0 + 1) * k].iter();
        let r1 = a[(i0 + 1) * k..(i0 + 2) * k].iter();
        let r2 = a[(i0 + 2) * k..(i0 + 3) * k].iter();
        let r3 = a[(i0 + 3) * k..(i0 + 4) * k].iter();
        for ((((brow, &a0), &a1), &a2), &a3) in b.chunks_exact(N).zip(r0).zip(r1).zip(r2).zip(r3) {
            let brow: &[f32; N] = brow.try_into().unwrap();
            for (j, &b_v) in brow.iter().enumerate() {
                acc[0][j] = a0.mul_add(b_v, acc[0][j]);
                acc[1][j] = a1.mul_add(b_v, acc[1][j]);
                acc[2][j] = a2.mul_add(b_v, acc[2][j]);
                acc[3][j] = a3.mul_add(b_v, acc[3][j]);
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            out[(i0 + r) * N..(i0 + r + 1) * N].copy_from_slice(acc_row);
        }
        i0 += IB;
    }
    for i in i0..m {
        let mut acc = [0.0f32; N];
        for (brow, &av) in b.chunks_exact(N).zip(a[i * k..(i + 1) * k].iter()) {
            let brow: &[f32; N] = brow.try_into().unwrap();
            for (acc_v, &b_v) in acc.iter_mut().zip(brow) {
                *acc_v = av.mul_add(b_v, *acc_v);
            }
        }
        out[i * N..(i + 1) * N].copy_from_slice(&acc);
    }
}

/// Small-problem entry: a transposed B would make the k loop stride across
/// rows, so materialize it in `[k, n]` layout into the shared workspace
/// first — `k*n` is tiny for every problem routed here.
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    isa: Isa,
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
) {
    if isa != Isa::Scalar {
        if tb {
            workspace::with_gemm_ws(0, k * n, |_, bt| {
                // Blocked transpose: a TB-row block of B spans few enough
                // cache lines to stay resident while every k reads it.
                const TB: usize = 64;
                let mut j0 = 0;
                while j0 < n {
                    let jl = (n - j0).min(TB);
                    for kk in 0..k {
                        for j in j0..j0 + jl {
                            bt[kk * n + j] = b[j * k + kk];
                        }
                    }
                    j0 += TB;
                }
                gemm_small_vec(isa, out, m, n, k, a, ta, bt);
            });
        } else {
            gemm_small_vec(isa, out, m, n, k, a, ta, b);
        }
        return;
    }
    if n <= NARROW_MAX && !ta {
        let dispatch = |out: &mut [f32], b: &[f32]| match n {
            1 => narrow_rows::<1>(out, m, k, a, b),
            2 => narrow_rows::<2>(out, m, k, a, b),
            3 => narrow_rows::<3>(out, m, k, a, b),
            4 => narrow_rows::<4>(out, m, k, a, b),
            5 => narrow_rows::<5>(out, m, k, a, b),
            6 => narrow_rows::<6>(out, m, k, a, b),
            7 => narrow_rows::<7>(out, m, k, a, b),
            _ => narrow_rows::<8>(out, m, k, a, b),
        };
        if tb {
            workspace::with_gemm_ws(0, k * n, |_, bt| {
                for (j, bcol) in b.chunks_exact(k).enumerate() {
                    for (kk, &v) in bcol.iter().enumerate() {
                        bt[kk * n + j] = v;
                    }
                }
                dispatch(out, bt);
            });
        } else {
            dispatch(out, b);
        }
        return;
    }
    if tb {
        workspace::with_gemm_ws(0, k * n, |_, bt| {
            // Blocked transpose: a TB-row block of B spans few enough cache
            // lines to stay resident while every k reads through it.
            const TB: usize = 64;
            let mut j0 = 0;
            while j0 < n {
                let jl = (n - j0).min(TB);
                for kk in 0..k {
                    for j in j0..j0 + jl {
                        bt[kk * n + j] = b[j * k + kk];
                    }
                }
                j0 += TB;
            }
            gemm_small_rows(out, m, n, k, a, ta, bt);
        });
    } else {
        gemm_small_rows(out, m, n, k, a, ta, b);
    }
}

/// Compute one row-block (`rows = chunk.len() / n` rows starting at global
/// row `ic0`, which must be MR-aligned) of `C += A·B` from the packed
/// operands, walking jc→pc→jr→ir so every element's chain advances in
/// ascending-k order. `isa` picks the microkernel family; all families
/// walk the same panels and extend the same chains.
fn row_block(
    chunk: &mut [f32],
    ic0: usize,
    n: usize,
    k: usize,
    a_pack: &[f32],
    b_pack: &[f32],
    isa: Isa,
) {
    debug_assert_eq!(ic0 % MR, 0);
    let rows = chunk.len() / n;
    let c_ptr = chunk.as_mut_ptr();
    let mut jc = 0;
    while jc < n {
        let nc = (n - jc).min(NC);
        let mut pc = 0;
        while pc < k {
            let kc = (k - pc).min(KC);
            let mut jr = jc;
            while jr < jc + nc {
                let nr_eff = (n - jr).min(NR);
                let q = jr / NR;
                let b_panel = &b_pack[q * k * NR + pc * NR..];
                let mut ir = 0;
                while ir < rows {
                    let mr_eff = (rows - ir).min(MR);
                    let p = (ic0 + ir) / MR;
                    let a_panel = &a_pack[p * k * MR + pc * MR..];
                    // SAFETY: the packed panels hold at least kc full-width
                    // k-steps past these offsets, and the tile written is
                    // `mr_eff×nr_eff` starting at local row `ir`, column
                    // `jr` — inside this task's chunk by construction. The
                    // vector kernels additionally require the runtime
                    // features `isa` attests (checked in `active_isa`) and
                    // 64-byte-aligned B panels (packs live in `AVec`s; the
                    // panel offset is a multiple of NR floats = 128 bytes).
                    unsafe {
                        let c = c_ptr.add(ir * n + jr);
                        let ap = a_panel.as_ptr();
                        let bp = b_panel.as_ptr();
                        let full = mr_eff == MR && nr_eff == NR;
                        match isa {
                            Isa::Avx512 => {
                                if full {
                                    simd::tile_avx512(ap, bp, kc, c, n);
                                } else {
                                    simd::tile_avx512_edge(ap, bp, kc, c, n, mr_eff, nr_eff);
                                }
                            }
                            Isa::Avx2 => {
                                if full {
                                    simd::tile_avx2(ap, bp, kc, c, n);
                                } else {
                                    simd::tile_avx2_edge(ap, bp, kc, c, n, mr_eff, nr_eff);
                                }
                            }
                            Isa::Scalar => {
                                if full {
                                    kern_full(ap, bp, kc, c, n);
                                } else if nr_eff <= NR / 2 && mr_eff > nr_eff {
                                    kern_narrow(ap, bp, kc, c, n, mr_eff, nr_eff);
                                } else {
                                    kern_edge(ap, bp, kc, c, n, mr_eff, nr_eff);
                                }
                            }
                        }
                    }
                    ir += MR;
                }
                jr += NR;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Tiled GEMM entry point: `out = op(A)·op(B)` with `out: [m, n]`,
/// `op(A): [m, k]`, `op(B): [k, n]`; `ta`/`tb` mean the buffer stores the
/// operand transposed (folded into packing — nothing is materialized).
/// `isa` selects the microkernel family (see `dispatch::mode_isa`); every
/// family produces identical bits.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_tiled(
    out: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
    isa: Isa,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    if m == 0 || n == 0 {
        return;
    }
    out.fill(0.0);
    if k == 0 {
        return;
    }
    let flops = m * n * k;
    let go_par = par_enabled() && flops >= PAR_GEMM_MIN_FLOPS && m > MC;
    // The scalar strip kernel vectorizes across columns, so it needs a full
    // strip; narrow outputs go to the ILP row-block kernel instead (which
    // reads A rows directly, so it needs them contiguous — no `ta`). The
    // vector small kernels handle every layout via strides, but the route
    // predicate is shared so mode choice can never change which problems
    // are "small" (bits match either way; this keeps perf behavior legible).
    if flops <= SMALL_GEMM_MAX_FLOPS && (n >= JB || (n <= NARROW_MAX && !ta)) && !go_par {
        return gemm_small(isa, out, m, n, k, a, ta, b, tb);
    }
    workspace::with_gemm_ws(packed_a_len(m, k), packed_b_len(k, n), |a_pack, b_pack| {
        pack_a(a_pack, a, m, k, ta);
        pack_b(b_pack, b, k, n, tb);
        let a_pack: &[f32] = a_pack;
        let b_pack: &[f32] = b_pack;
        if go_par {
            out.par_chunks_mut(MC * n)
                .enumerate()
                .for_each(|(bi, chunk)| row_block(chunk, bi * MC, n, k, a_pack, b_pack, isa));
        } else {
            for (bi, chunk) in out.chunks_mut(MC * n).enumerate() {
                row_block(chunk, bi * MC, n, k, a_pack, b_pack, isa);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::active_isa;

    fn seq(len: usize, salt: usize) -> Vec<f32> {
        (0..len).map(|i| (((i * 31 + salt * 17) % 23) as f32 - 11.0) / 7.0).collect()
    }

    /// The contract restated as the simplest possible loop: one ascending-k
    /// `mul_add` chain per element.
    fn reference(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] = av.mul_add(b[kk * n + j], out[i * n + j]);
                }
            }
        }
        out
    }

    const AWKWARD: &[(usize, usize, usize)] = &[
        (1usize, 1usize, 1usize),
        (MR, NR, 4),
        (MR + 1, NR + 1, KC + 1),
        (MC + 3, NR * 2 + 5, KC - 1),
        (2 * MC, 2 * NR, 2 * KC),
        (3, 70, 129),
        (65, 1, 300),
        (1, 33, 7),
        (17, 19, 23),
    ];

    #[test]
    fn tiled_is_bit_identical_to_reference_on_awkward_shapes() {
        // Shapes straddling MR/NR/KC/MC boundaries, including degenerate 1s,
        // under every ISA the host can run.
        for &isa in &[active_isa(), Isa::Scalar] {
            for &(m, n, k) in AWKWARD {
                let a = seq(m * k, 1);
                let b = seq(k * n, 2);
                let mut out = vec![f32::NAN; m * n]; // must be fully overwritten
                gemm_tiled(&mut out, m, n, k, &a, false, &b, false, isa);
                let want = reference(&a, &b, m, n, k);
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "mismatch at m={m} n={n} k={k} isa={isa:?}"
                );
            }
        }
    }

    #[test]
    fn vector_and_scalar_isas_are_bit_identical() {
        // The heart of the lane-stable contract: the hand-vectorized tiles
        // and the scalar lane emulation must agree on every bit, for both
        // the packed and the no-pack routes.
        let isa = active_isa();
        for &(m, n, k) in AWKWARD {
            let a = seq(m * k, 7);
            let b = seq(k * n, 8);
            let mut vec_out = vec![0.0f32; m * n];
            gemm_tiled(&mut vec_out, m, n, k, &a, false, &b, false, isa);
            let mut sc_out = vec![0.0f32; m * n];
            gemm_tiled(&mut sc_out, m, n, k, &a, false, &b, false, Isa::Scalar);
            assert_eq!(
                vec_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                sc_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "ISA divergence at m={m} n={n} k={k} (host isa {isa:?})"
            );
        }
    }

    #[test]
    fn transposed_operands_match_materialized_transpose() {
        let (m, n, k) = (13usize, 21usize, 17usize);
        let a = seq(m * k, 3);
        let b = seq(k * n, 4);
        // Store A as [k, m] and B as [n, k].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut bt = vec![0.0f32; k * n];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        for &isa in &[active_isa(), Isa::Scalar] {
            let mut plain = vec![0.0f32; m * n];
            gemm_tiled(&mut plain, m, n, k, &a, false, &b, false, isa);
            let mut via_ta = vec![0.0f32; m * n];
            gemm_tiled(&mut via_ta, m, n, k, &at, true, &b, false, isa);
            let mut via_tb = vec![0.0f32; m * n];
            gemm_tiled(&mut via_tb, m, n, k, &a, false, &bt, true, isa);
            assert_eq!(plain, via_ta, "ta mismatch under {isa:?}");
            assert_eq!(plain, via_tb, "tb mismatch under {isa:?}");
        }
    }

    #[test]
    fn small_and_packed_paths_agree_bitwise() {
        // A shape routed to the no-pack kernel by the dispatcher; drive the
        // packed machinery directly on the same inputs and compare bits,
        // for each ISA and each operand layout.
        let (m, n, k) = (67usize, 29usize, 33usize);
        let a = seq(m * k, 5);
        let b = seq(k * n, 6);
        for &isa in &[active_isa(), Isa::Scalar] {
            for &(ta, tb) in &[(false, false), (true, false), (false, true)] {
                let (a_buf, b_buf) = {
                    let mut at = a.clone();
                    let mut bt = b.clone();
                    if ta {
                        for i in 0..m {
                            for kk in 0..k {
                                at[kk * m + i] = a[i * k + kk];
                            }
                        }
                    }
                    if tb {
                        for kk in 0..k {
                            for j in 0..n {
                                bt[j * k + kk] = b[kk * n + j];
                            }
                        }
                    }
                    (at, bt)
                };
                let mut small = vec![0.0f32; m * n];
                gemm_small(isa, &mut small, m, n, k, &a_buf, ta, &b_buf, tb);
                let mut packed = vec![0.0f32; m * n];
                workspace::with_gemm_ws(packed_a_len(m, k), packed_b_len(k, n), |ap, bp| {
                    pack_a(ap, &a_buf, m, k, ta);
                    pack_b(bp, &b_buf, k, n, tb);
                    for (bi, chunk) in packed.chunks_mut(MC * n).enumerate() {
                        row_block(chunk, bi * MC, n, k, ap, bp, isa);
                    }
                });
                assert_eq!(
                    small.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    packed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "paths diverge at ta={ta} tb={tb} isa={isa:?}"
                );
            }
        }
    }

    #[test]
    fn zero_k_zeroes_the_output() {
        let mut out = vec![7.0f32; 6];
        gemm_tiled(&mut out, 2, 3, 0, &[], false, &[], false, Isa::Scalar);
        assert_eq!(out, vec![0.0; 6]);
    }
}
