//! The determinism contract, tested end to end: the tiled kernel
//! generation must be **bit-identical** to the retained naive reference
//! for every shape — ragged or blocking-aligned, through every internal
//! fast path (packed, strip, narrow, tiny-k) — and its results must not
//! depend on how many rayon workers execute it.
//!
//! These tests flip the process-global kernel mode and the
//! `RAYON_NUM_THREADS` variable, so everything that does either runs under
//! one mutex.

use proptest::prelude::*;
use sefi_tensor::{
    conv2d, conv2d_backward, matmul, matmul_a_bt, matmul_at_b, set_kernel_mode, ConvSpec,
    KernelMode, Tensor,
};
use std::sync::Mutex;

static GLOBALS: Mutex<()> = Mutex::new(());

/// Run `f` under both kernel generations and hand back both results.
fn both_modes<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let _guard = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    set_kernel_mode(KernelMode::Tiled);
    let tiled = f();
    set_kernel_mode(KernelMode::Naive);
    let naive = f();
    set_kernel_mode(KernelMode::Tiled);
    (tiled, naive)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn filled(shape: &[usize], salt: u32) -> Tensor {
    // Deterministic, sign-mixed, non-representable-sum values so that any
    // reassociation of the accumulation chain actually changes the bits.
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            (x % 2000) as f32 / 300.0 - 3.3
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Shapes that straddle every blocking boundary of the packed path
/// (MR = 8, NR = 16, MC = 64, KC = 256) and the small-problem fast paths:
/// narrow (n ≤ 8), tiny-k (k ≤ 8), strip (n ≥ 16), and true packed
/// (m·n·k above the small-GEMM cutoff).
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 2, 9),      // narrow
    (27, 300, 2),   // tiny-k
    (67, 29, 33),   // strip, ragged
    (8, 16, 256),   // exactly one block each
    (9, 17, 257),   // one past each boundary
    (65, 33, 257),  // packed path (above the small-GEMM flop cutoff)
    (130, 15, 300), // packed, ragged n, multiple row blocks
    (7, 77, 1000),  // packed, m smaller than one microtile
];

#[test]
fn gemm_bitwise_identical_across_generations_on_boundary_shapes() {
    for &(m, n, k) in GEMM_SHAPES {
        let a = filled(&[m, k], 1);
        let at = filled(&[k, m], 2);
        let b = filled(&[k, n], 3);
        let bt = filled(&[n, k], 4);
        let cases: [(&str, (Tensor, Tensor)); 3] = [
            ("matmul", both_modes(|| matmul(&a, &b))),
            ("at_b", both_modes(|| matmul_at_b(&at, &b))),
            ("a_bt", both_modes(|| matmul_a_bt(&a, &bt))),
        ];
        for (name, (tiled, naive)) in cases {
            assert_eq!(
                bits(&tiled),
                bits(&naive),
                "{name} diverged from the reference on ({m},{n},{k})"
            );
        }
    }
}

#[test]
fn results_do_not_depend_on_rayon_thread_count() {
    let _guard = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    set_kernel_mode(KernelMode::Tiled);
    // Big enough to cross the parallel-dispatch thresholds for GEMM
    // (m·n·k ≥ 48³ and m > MC) and for im2col/col2im (≥ 2¹⁵ elements).
    let a = filled(&[130, 64], 5);
    let b = filled(&[64, 64], 6);
    let x = filled(&[4, 3, 32, 32], 7);
    let w = filled(&[5, 3, 3, 3], 8);
    let bias = filled(&[5], 9);
    let spec = ConvSpec { stride: 1, pad: 1 };
    let dout = filled(&[4, 5, 32, 32], 10);

    type Snapshot = (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>);
    let mut reference: Option<Snapshot> = None;
    for threads in ["1", "2", "3", "5"] {
        // The vendored rayon shim reads this per dispatch, so varying it
        // inside one process genuinely changes the fan-out.
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let mm = matmul(&a, &b);
        let y = conv2d(&x, &w, &bias, spec);
        let g = conv2d_backward(&x, &w, &dout, spec);
        let got = (bits(&mm), bits(&y), bits(&g.dx), bits(&g.dw), bits(&g.db));
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                assert_eq!(want, &got, "results changed with RAYON_NUM_THREADS={threads}")
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ragged random shapes sweep the strip/narrow/tiny-k dispatch space.
    #[test]
    fn gemm_bitwise_identical_on_ragged_shapes(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        salt in 0u32..1000,
    ) {
        let a = filled(&[m, k], salt);
        let b = filled(&[k, n], salt.wrapping_add(1));
        let (tiled, naive) = both_modes(|| matmul(&a, &b));
        prop_assert_eq!(bits(&tiled), bits(&naive));
        let at = filled(&[k, m], salt.wrapping_add(2));
        let (tiled, naive) = both_modes(|| matmul_at_b(&at, &b));
        prop_assert_eq!(bits(&tiled), bits(&naive));
        let bt = filled(&[n, k], salt.wrapping_add(3));
        let (tiled, naive) = both_modes(|| matmul_a_bt(&a, &bt));
        prop_assert_eq!(bits(&tiled), bits(&naive));
    }

    /// Convolution forward and backward, including strided geometry (the
    /// strided backward takes the canonical col2im path, stride 1 the
    /// tap-inverted one — both must match the reference bit for bit).
    #[test]
    fn conv_bitwise_identical_across_generations(
        n in 1usize..3,
        c in 1usize..4,
        o in 1usize..5,
        hw in 4usize..9,
        stride in 1usize..3,
        pad in 0usize..2,
        salt in 0u32..1000,
    ) {
        let spec = ConvSpec { stride, pad };
        let x = filled(&[n, c, hw, hw], salt);
        let w = filled(&[o, c, 3, 3], salt.wrapping_add(1));
        let bias = filled(&[o], salt.wrapping_add(2));
        let oh = spec.out_extent(hw, 3);
        let ow = spec.out_extent(hw, 3);
        let (tiled, naive) = both_modes(|| conv2d(&x, &w, &bias, spec));
        prop_assert_eq!(bits(&tiled), bits(&naive), "forward diverged");
        let dout = filled(&[n, o, oh, ow], salt.wrapping_add(3));
        let (tg, ng) = both_modes(|| conv2d_backward(&x, &w, &dout, spec));
        prop_assert_eq!(bits(&tg.dx), bits(&ng.dx), "dx diverged");
        prop_assert_eq!(bits(&tg.dw), bits(&ng.dw), "dw diverged");
        prop_assert_eq!(bits(&tg.db), bits(&ng.db), "db diverged");
    }
}
