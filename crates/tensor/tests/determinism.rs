//! The determinism contract, tested end to end: all three kernel
//! generations — **simd** (runtime-dispatched AVX-512/AVX2 broadcast-FMA
//! microkernels), **tiled** (the same blocked driver on the scalar
//! lane-emulating microkernels), and **naive** (unblocked triple loops)
//! — must be **bit-identical** for every shape — ragged or
//! blocking-aligned, through every internal fast path (packed, strip,
//! narrow, tiny-k, no-pack vector) — and their results must not depend on
//! how many rayon workers execute them.
//!
//! These tests flip the process-global kernel mode and the
//! `RAYON_NUM_THREADS` variable, so everything that does either runs under
//! one mutex.

use proptest::prelude::*;
use sefi_tensor::{
    conv2d, conv2d_backward, matmul, matmul_a_bt, matmul_at_b, set_kernel_mode, ConvSpec,
    KernelMode, Tensor,
};
use std::sync::Mutex;

static GLOBALS: Mutex<()> = Mutex::new(());

const MODES: [(KernelMode, &str); 3] =
    [(KernelMode::Simd, "simd"), (KernelMode::Tiled, "tiled"), (KernelMode::Naive, "naive")];

/// Run `f` under all three kernel generations and hand back the results
/// in [`MODES`] order (simd, tiled, naive).
fn all_modes<R>(mut f: impl FnMut() -> R) -> [R; 3] {
    let _guard = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let out = MODES.map(|(mode, _)| {
        set_kernel_mode(mode);
        f()
    });
    set_kernel_mode(KernelMode::Simd);
    out
}

/// Assert the three per-mode results of `all_modes` agree bit for bit.
fn assert_all_modes_eq(results: &[Tensor; 3], what: &str) {
    let simd = bits(&results[0]);
    for (i, (_, name)) in MODES.iter().enumerate().skip(1) {
        assert_eq!(simd, bits(&results[i]), "{what}: simd vs {name} diverged");
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn filled(shape: &[usize], salt: u32) -> Tensor {
    // Deterministic, sign-mixed, non-representable-sum values so that any
    // reassociation of the accumulation chain actually changes the bits.
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            (x % 2000) as f32 / 300.0 - 3.3
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Shapes that straddle every blocking boundary of the packed path
/// (MR = 8, NR = 32, MC = 64, KC = 256) and the small-problem fast paths:
/// narrow (n ≤ 8), tiny-k (k ≤ 8), strip/no-pack (below the small-GEMM
/// flop cutoff), and true packed (m·n·k above it). Ragged n exercises the
/// masked vector edge kernels; ragged m the partial microtiles.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 2, 9),      // narrow
    (27, 300, 2),   // tiny-k
    (67, 29, 33),   // strip, ragged both ways
    (8, 32, 256),   // exactly one block each
    (9, 33, 257),   // one past each boundary (one masked column)
    (65, 33, 257),  // packed path (above the small-GEMM flop cutoff)
    (130, 15, 300), // packed, n narrower than one vector, multiple row blocks
    (7, 77, 1000),  // packed, m smaller than one microtile
];

#[test]
fn gemm_bitwise_identical_across_generations_on_boundary_shapes() {
    for &(m, n, k) in GEMM_SHAPES {
        let a = filled(&[m, k], 1);
        let at = filled(&[k, m], 2);
        let b = filled(&[k, n], 3);
        let bt = filled(&[n, k], 4);
        let cases: [(&str, [Tensor; 3]); 3] = [
            ("matmul", all_modes(|| matmul(&a, &b))),
            ("at_b", all_modes(|| matmul_at_b(&at, &b))),
            ("a_bt", all_modes(|| matmul_a_bt(&a, &bt))),
        ];
        for (name, results) in &cases {
            assert_all_modes_eq(results, &format!("{name} on ({m},{n},{k})"));
        }
    }
}

#[test]
fn results_do_not_depend_on_rayon_thread_count() {
    let _guard = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    // The vectorized generation is the one whose parallel row-blocks could
    // plausibly race or resplit chains, so pin it here (tiled shares the
    // same driver; naive has its own test history).
    set_kernel_mode(KernelMode::Simd);
    // Big enough to cross the parallel-dispatch thresholds for GEMM
    // (m·n·k ≥ 72³ and m > MC) and for im2col (≥ 2¹⁶ elements).
    let a = filled(&[130, 64], 5);
    let b = filled(&[64, 64], 6);
    let x = filled(&[4, 3, 32, 32], 7);
    let w = filled(&[5, 3, 3, 3], 8);
    let bias = filled(&[5], 9);
    let spec = ConvSpec { stride: 1, pad: 1 };
    let dout = filled(&[4, 5, 32, 32], 10);

    type Snapshot = (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>);
    let mut reference: Option<Snapshot> = None;
    for threads in ["1", "2", "3", "5"] {
        // The vendored rayon shim reads this per dispatch, so varying it
        // inside one process genuinely changes the fan-out.
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let mm = matmul(&a, &b);
        let y = conv2d(&x, &w, &bias, spec);
        let g = conv2d_backward(&x, &w, &dout, spec);
        let got = (bits(&mm), bits(&y), bits(&g.dx), bits(&g.dw), bits(&g.db));
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                assert_eq!(want, &got, "results changed with RAYON_NUM_THREADS={threads}")
            }
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    set_kernel_mode(KernelMode::Simd);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ragged random shapes sweep the strip/narrow/tiny-k dispatch space.
    #[test]
    fn gemm_bitwise_identical_on_ragged_shapes(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        salt in 0u32..1000,
    ) {
        let a = filled(&[m, k], salt);
        let b = filled(&[k, n], salt.wrapping_add(1));
        let r = all_modes(|| matmul(&a, &b));
        prop_assert_eq!(bits(&r[0]), bits(&r[1]));
        prop_assert_eq!(bits(&r[0]), bits(&r[2]));
        let at = filled(&[k, m], salt.wrapping_add(2));
        let r = all_modes(|| matmul_at_b(&at, &b));
        prop_assert_eq!(bits(&r[0]), bits(&r[1]));
        prop_assert_eq!(bits(&r[0]), bits(&r[2]));
        let bt = filled(&[n, k], salt.wrapping_add(3));
        let r = all_modes(|| matmul_a_bt(&a, &bt));
        prop_assert_eq!(bits(&r[0]), bits(&r[1]));
        prop_assert_eq!(bits(&r[0]), bits(&r[2]));
    }

    /// Convolution forward and backward, including strided geometry (the
    /// strided backward takes the canonical col2im path, stride 1 the
    /// tap-inverted one — every generation must match bit for bit).
    #[test]
    fn conv_bitwise_identical_across_generations(
        n in 1usize..3,
        c in 1usize..4,
        o in 1usize..5,
        hw in 4usize..9,
        stride in 1usize..3,
        pad in 0usize..2,
        salt in 0u32..1000,
    ) {
        let spec = ConvSpec { stride, pad };
        let x = filled(&[n, c, hw, hw], salt);
        let w = filled(&[o, c, 3, 3], salt.wrapping_add(1));
        let bias = filled(&[o], salt.wrapping_add(2));
        let oh = spec.out_extent(hw, 3);
        let ow = spec.out_extent(hw, 3);
        let fwd = all_modes(|| conv2d(&x, &w, &bias, spec));
        prop_assert_eq!(bits(&fwd[0]), bits(&fwd[1]), "forward: simd vs tiled");
        prop_assert_eq!(bits(&fwd[0]), bits(&fwd[2]), "forward: simd vs naive");
        let dout = filled(&[n, o, oh, ow], salt.wrapping_add(3));
        let grads = all_modes(|| conv2d_backward(&x, &w, &dout, spec));
        for (g, name) in grads.iter().zip(["simd", "tiled", "naive"]).skip(1) {
            prop_assert_eq!(bits(&grads[0].dx), bits(&g.dx), "dx: simd vs {}", name);
            prop_assert_eq!(bits(&grads[0].dw), bits(&g.dw), "dw: simd vs {}", name);
            prop_assert_eq!(bits(&grads[0].db), bits(&g.db), "db: simd vs {}", name);
        }
    }
}
