//! Property-based tests for the tensor kernels.

use proptest::prelude::*;
use sefi_tensor::{
    avgpool2d, col2im, conv2d, im2col, matmul, matmul_a_bt, matmul_at_b, maxpool2d,
    maxpool2d_backward, transpose2d, ConvSpec, PoolSpec, Tensor,
};

fn tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-10.0f32..10.0, n).prop_map(move |data| Tensor::from_vec(data, &shape))
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape() && a.data().iter().zip(b.data()).all(|(&x, &y)| (x - y).abs() <= tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor(vec![4, 5]),
        b in tensor(vec![5, 3]),
        c in tensor(vec![5, 3]),
    ) {
        // A·(B + C) == A·B + A·C (within float tolerance).
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = matmul(&a, &bc);
        let mut rhs = matmul(&a, &b);
        rhs.add_assign(&matmul(&a, &c));
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn transpose_is_an_involution(t in tensor(vec![7, 4])) {
        prop_assert_eq!(transpose2d(&transpose2d(&t)), t);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in (tensor(vec![3, 6]), tensor(vec![6, 4]))) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let lhs = transpose2d(&matmul(&a, &b));
        let rhs = matmul(&transpose2d(&b), &transpose2d(&a));
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn fused_transpose_variants_agree(
        a in tensor(vec![6, 4]),
        b in tensor(vec![6, 5]),
        c in tensor(vec![4, 6]),
        d in tensor(vec![5, 6]),
    ) {
        prop_assert!(close(&matmul_at_b(&a, &b), &matmul(&transpose2d(&a), &b), 1e-3));
        prop_assert!(close(&matmul_a_bt(&c, &d), &matmul(&c, &transpose2d(&d)), 1e-3));
    }

    #[test]
    fn im2col_col2im_are_adjoint(
        x in tensor(vec![1, 2, 6, 6]),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        // <im2col(x), y> == <x, col2im(y)> for random y.
        let spec = ConvSpec { stride, pad };
        let cols = im2col(&x, 3, 3, spec);
        let y_data: Vec<f32> = (0..cols.len()).map(|i| ((i * 31 % 17) as f32 - 8.0) / 5.0).collect();
        let y = Tensor::from_vec(y_data, cols.shape());
        let lhs: f64 = cols.data().iter().zip(y.data()).map(|(&a, &b)| (a * b) as f64).sum();
        let folded = col2im(&y, x.shape(), 3, 3, spec);
        let rhs: f64 = x.data().iter().zip(folded.data()).map(|(&a, &b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_is_linear_in_the_input(
        x1 in tensor(vec![1, 2, 5, 5]),
        x2 in tensor(vec![1, 2, 5, 5]),
        w in tensor(vec![3, 2, 3, 3]),
    ) {
        // conv(x1 + x2) == conv(x1) + conv(x2) with zero bias.
        let spec = ConvSpec { stride: 1, pad: 1 };
        let bias = Tensor::zeros(&[3]);
        let mut sum = x1.clone();
        sum.add_assign(&x2);
        let lhs = conv2d(&sum, &w, &bias, spec);
        let mut rhs = conv2d(&x1, &w, &bias, spec);
        rhs.add_assign(&conv2d(&x2, &w, &bias, spec));
        prop_assert!(close(&lhs, &rhs, 1e-2));
    }

    #[test]
    fn maxpool_output_dominates_avgpool(x in tensor(vec![1, 1, 6, 6])) {
        let spec = PoolSpec { size: 2, stride: 2 };
        let (mx, _) = maxpool2d(&x, spec);
        let avg = avgpool2d(&x, spec);
        for (m, a) in mx.data().iter().zip(avg.data()) {
            prop_assert!(m >= a);
        }
    }

    #[test]
    fn maxpool_backward_conserves_gradient_mass(x in tensor(vec![1, 2, 4, 4])) {
        let spec = PoolSpec { size: 2, stride: 2 };
        let (out, arg) = maxpool2d(&x, spec);
        let dout = Tensor::full(out.shape(), 1.0);
        let dx = maxpool2d_backward(&dout, &arg, x.shape());
        prop_assert!((dx.sum() - dout.sum()).abs() < 1e-4);
    }

    #[test]
    fn reshape_preserves_sum(t in tensor(vec![3, 8])) {
        let s = t.sum();
        let r = t.reshape(&[4, 6]);
        prop_assert_eq!(r.sum(), s);
    }
}
