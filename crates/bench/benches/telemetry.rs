//! Telemetry overhead: what the per-trial event emit + manifest append
//! costs next to a real trial.
//!
//! The campaign machinery adds, per executed trial, two sink emits
//! (`TrialStart`/`TrialEnd`) and one flushed manifest append. This bench
//! measures that bookkeeping in isolation, measures one real (micro-scale)
//! Table IV trial, and asserts the bookkeeping stays under 1% of the trial
//! — the acceptance bound for the campaign telemetry layer. Real budgets
//! train for far longer than the micro budget, so the production ratio is
//! smaller still.

use criterion::{criterion_group, criterion_main, Criterion};
use sefi_core::{Corrupter, CorrupterConfig};
use sefi_experiments::{Budget, Prebaked};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_models::ModelKind;
use sefi_telemetry::{digest64, Event, JsonlSink, Manifest, TrialOutcome, TrialRecord};
use std::hint::black_box;
use std::time::Instant;

fn micro() -> Budget {
    Budget {
        trials: 2,
        curve_trials: 1,
        restart_epoch: 1,
        resume_epochs: 1,
        curve_end_epoch: 2,
        fig2_trainings: 1,
        ..Budget::smoke()
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sefi_bench_tel_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

fn outcome() -> TrialOutcome {
    TrialOutcome::ok().with_collapsed(true).with_counters(1000, 37, 0)
}

fn record(seed: u64) -> TrialRecord {
    TrialRecord {
        experiment: "nev".to_string(),
        cell: "nev-64-1000".to_string(),
        framework: "chainer".to_string(),
        model: "alexnet".to_string(),
        trial: seed,
        seed,
        config_digest: digest64("bench"),
        duration_ns: 1_000_000,
        outcome: outcome(),
    }
}

/// One trial's worth of telemetry bookkeeping.
fn bookkeep(sink: &JsonlSink, manifest: &Manifest, seed: u64) {
    sink.emit(&Event::TrialStart {
        experiment: "nev".to_string(),
        cell: "nev-64-1000".to_string(),
        trial: seed,
        seed,
    });
    manifest.record(record(seed)).expect("manifest append succeeds");
    sink.emit(&Event::TrialEnd {
        experiment: "nev".to_string(),
        cell: "nev-64-1000".to_string(),
        trial: seed,
        seed,
        status: "collapsed".to_string(),
        duration_ns: 1_000_000,
        injections: 1000,
        nan_redraws: 37,
        skipped: 0,
        cached: false,
    });
}

/// One real Table IV trial at micro scale (corrupt + resume), without the
/// campaign machinery.
fn one_trial(pre: &Prebaked, seed: u64) -> bool {
    let pristine =
        pre.checkpoint(FrameworkKind::Chainer, ModelKind::AlexNet, sefi_hdf5::Dtype::F64);
    let mut ck = pristine.clone();
    let cfg = CorrupterConfig::bit_flips_full_range(1000, Precision::Fp64, seed);
    Corrupter::new(cfg).expect("valid preset").corrupt(&mut ck).expect("corruption succeeds");
    pre.resume(FrameworkKind::Chainer, ModelKind::AlexNet, &ck, pre.budget().resume_epochs)
        .collapsed()
}

fn bench_telemetry(c: &mut Criterion) {
    let dir = scratch("sink");
    let sink = JsonlSink::to_file(dir.join("telemetry.jsonl")).expect("sink opens");
    let manifest = Manifest::open(dir.join("manifest.jsonl")).expect("manifest opens");
    let mut seed = 0u64;
    c.bench_function("telemetry/per_trial_bookkeeping", |b| {
        b.iter(|| {
            seed += 1;
            bookkeep(black_box(&sink), black_box(&manifest), seed);
        })
    });

    let pre = Prebaked::new(micro());
    c.bench_function("telemetry/one_micro_trial", |b| {
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            black_box(one_trial(&pre, s));
        })
    });

    // The acceptance bound, checked directly: average bookkeeping cost
    // must stay under 1% of one micro-scale trial.
    const BOOKKEEPS: u32 = 200;
    let t0 = Instant::now();
    for i in 0..BOOKKEEPS {
        bookkeep(&sink, &manifest, 1_000_000 + u64::from(i));
    }
    let per_bookkeep = t0.elapsed() / BOOKKEEPS;
    let t0 = Instant::now();
    let _ = black_box(one_trial(&pre, 424_242));
    let per_trial = t0.elapsed();
    println!(
        "telemetry overhead: {per_bookkeep:?} bookkeeping vs {per_trial:?} trial \
         ({:.4}%)",
        100.0 * per_bookkeep.as_secs_f64() / per_trial.as_secs_f64()
    );
    assert!(
        per_bookkeep.as_secs_f64() < 0.01 * per_trial.as_secs_f64(),
        "telemetry bookkeeping ({per_bookkeep:?}) exceeds 1% of a trial ({per_trial:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
