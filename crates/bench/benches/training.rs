//! Training-substrate cost: one epoch per model, plus the forward-only
//! prediction path (Table VIII's workload).

use criterion::{criterion_group, criterion_main, Criterion};
use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_models::{ModelConfig, ModelKind};
use std::hint::black_box;

fn data() -> SyntheticCifar10 {
    SyntheticCifar10::generate(DataConfig {
        train: 64,
        test: 32,
        image_size: 16,
        seed: 1,
        noise: 0.25,
    })
}

fn session(model: ModelKind) -> Session {
    let mut cfg = SessionConfig::new(FrameworkKind::Chainer, model, 1);
    cfg.model_config = ModelConfig { scale: 0.03, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    Session::new(cfg)
}

fn bench_epoch(c: &mut Criterion) {
    let d = data();
    let mut group = c.benchmark_group("train_one_epoch");
    group.sample_size(10);
    for model in ModelKind::all() {
        group.bench_function(model.id(), |b| {
            b.iter_batched(
                || session(model),
                |mut s| {
                    black_box(s.train_to(&d, 1));
                    s
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let d = data();
    let mut group = c.benchmark_group("predict_batch");
    group.sample_size(10);
    let (images, _) = d.prediction_set(32);
    for model in ModelKind::all() {
        let mut s = session(model);
        group.bench_function(model.id(), |b| {
            b.iter(|| black_box(s.predict(images.clone())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch, bench_predict);
criterion_main!(benches);
