//! Injector throughput: corruption modes × precisions, NaN-avoidance cost,
//! and the N-EV threshold ablation (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sefi_bench::synthetic_checkpoint;
use sefi_core::{Corrupter, CorrupterConfig, CorruptionMode};
use sefi_float::{BitMask, BitRange, NevPolicy, Precision};
use sefi_hdf5::Dtype;
use std::hint::black_box;

const FLIPS: u64 = 1000;
const ENTRIES: usize = 100_000;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("injector_modes");
    group.throughput(Throughput::Elements(FLIPS));
    let file = synthetic_checkpoint(ENTRIES, Dtype::F64);

    let configs = [
        ("bit_range", CorruptionMode::BitRange(BitRange::below_exponent_msb(Precision::Fp64))),
        ("bit_mask", CorruptionMode::BitMask(BitMask::parse("11101101").unwrap())),
        ("scaling_factor", CorruptionMode::ScalingFactor(4500.0)),
    ];
    for (name, mode) in configs {
        group.bench_function(name, |b| {
            let mut cfg = CorrupterConfig::bit_flips(FLIPS, Precision::Fp64, 1);
            cfg.mode = mode.clone();
            cfg.allow_nan_values = true;
            let corrupter = Corrupter::new(cfg).unwrap();
            b.iter(|| {
                let mut ck = file.clone();
                black_box(corrupter.corrupt(&mut ck).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_precisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("injector_precisions");
    group.throughput(Throughput::Elements(FLIPS));
    for (dtype, precision) in [
        (Dtype::F16, Precision::Fp16),
        (Dtype::F32, Precision::Fp32),
        (Dtype::F64, Precision::Fp64),
    ] {
        let file = synthetic_checkpoint(ENTRIES, dtype);
        group.bench_function(format!("fp{}", precision.width()), |b| {
            let corrupter =
                Corrupter::new(CorrupterConfig::bit_flips_full_range(FLIPS, precision, 2)).unwrap();
            b.iter(|| {
                let mut ck = file.clone();
                black_box(corrupter.corrupt(&mut ck).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_nan_avoidance(c: &mut Criterion) {
    // The NaN-avoidance redraw loop's overhead: full-range flips with and
    // without the retry (the retry triggers on every exponent-MSB draw).
    let mut group = c.benchmark_group("injector_nan_avoidance");
    let file = synthetic_checkpoint(ENTRIES, Dtype::F64);
    for allow in [true, false] {
        group.bench_function(if allow { "allow_nan" } else { "redraw_nan" }, |b| {
            let mut cfg = CorrupterConfig::bit_flips_full_range(FLIPS, Precision::Fp64, 3);
            cfg.allow_nan_values = allow;
            let corrupter = Corrupter::new(cfg).unwrap();
            b.iter(|| {
                let mut ck = file.clone();
                black_box(corrupter.corrupt(&mut ck).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_nev_threshold_ablation(c: &mut Criterion) {
    // DESIGN.md §4.6: N-EV classification cost across thresholds (it is on
    // the hot path of collapse detection after every epoch).
    let mut group = c.benchmark_group("nev_threshold_ablation");
    let values: Vec<f32> = (0..ENTRIES).map(|i| ((i as f32) * 0.61).tan()).collect();
    group.throughput(Throughput::Elements(ENTRIES as u64));
    for threshold in [1e10f64, 1e30, 1e300] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threshold:e}")),
            &threshold,
            |b, &t| {
                let policy = NevPolicy::with_threshold(t);
                b.iter(|| black_box(policy.count_nev(&values)));
            },
        );
    }
    group.finish();
}

fn bench_equivalent_replay(c: &mut Criterion) {
    // Log replay vs fresh corruption (Section IV-C machinery).
    let mut group = c.benchmark_group("equivalent_injection");
    let file = synthetic_checkpoint(ENTRIES, Dtype::F64);
    let corrupter = Corrupter::new(CorrupterConfig::bit_flips(FLIPS, Precision::Fp64, 4)).unwrap();
    let (_, log) = {
        let mut ck = file.clone();
        corrupter.corrupt_with_log(&mut ck).unwrap()
    };
    group.throughput(Throughput::Elements(FLIPS));
    group.bench_function("replay_log", |b| {
        b.iter(|| {
            let mut ck = file.clone();
            black_box(log.replay(&mut ck, 9).unwrap())
        });
    });
    group.bench_function("json_roundtrip", |b| {
        b.iter(|| {
            let json = log.to_json();
            black_box(sefi_core::InjectionLog::from_json(&json).unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_modes,
    bench_precisions,
    bench_nan_avoidance,
    bench_nev_threshold_ablation,
    bench_equivalent_replay
);
criterion_main!(benches);
