//! Protection-layer benches: the NevGuard scrubber, the SEC-DED shield,
//! and the iterative-solver substrate — the cost of making checkpoints
//! "virtually unbreakable" (paper Section VI-1).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sefi_bench::synthetic_checkpoint;
use sefi_core::{Corrupter, CorrupterConfig, NevGuard};
use sefi_ecc::EccShield;
use sefi_float::Precision;
use sefi_hdf5::Dtype;
use sefi_solver::HeatSolver;
use std::hint::black_box;

const ENTRIES: usize = 100_000;

fn bench_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("nev_guard");
    group.throughput(Throughput::Elements(ENTRIES as u64));
    let clean = synthetic_checkpoint(ENTRIES, Dtype::F64);
    let dirty = {
        let mut f = clean.clone();
        Corrupter::new(CorrupterConfig::bit_flips_full_range(1000, Precision::Fp64, 1))
            .unwrap()
            .corrupt(&mut f)
            .unwrap();
        f
    };
    group.bench_function("scrub_clean", |b| {
        b.iter(|| {
            let mut f = clean.clone();
            black_box(NevGuard::default_repair().scrub(&mut f))
        });
    });
    group.bench_function("scrub_dirty_1000_flips", |b| {
        b.iter(|| {
            let mut f = dirty.clone();
            black_box(NevGuard::default_repair().scrub(&mut f))
        });
    });
    group.finish();
}

fn bench_ecc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_shield");
    group.throughput(Throughput::Elements(ENTRIES as u64));
    let file = synthetic_checkpoint(ENTRIES, Dtype::F64);
    group.bench_function("protect", |b| {
        b.iter(|| black_box(EccShield::protect(&file)));
    });
    let shield = EccShield::protect(&file);
    group.bench_function("verify_clean", |b| {
        b.iter(|| {
            let mut f = file.clone();
            black_box(shield.verify_and_repair(&mut f).unwrap())
        });
    });
    let corrupted = {
        let mut f = file.clone();
        Corrupter::new(CorrupterConfig::bit_flips_full_range(100, Precision::Fp64, 2))
            .unwrap()
            .corrupt(&mut f)
            .unwrap();
        f
    };
    group.bench_function("verify_and_repair_100_flips", |b| {
        b.iter(|| {
            let mut f = corrupted.clone();
            black_box(shield.verify_and_repair(&mut f).unwrap())
        });
    });
    group.bench_function("word_encode", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for w in 0..1000u64 {
                acc ^= sefi_ecc::encode(black_box(w.wrapping_mul(0x9E3779B97F4A7C15)));
            }
            acc
        });
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("heat_solver");
    group.bench_function("jacobi_sweep_64x64", |b| {
        let mut s = HeatSolver::new(64, 64, [100.0, 0.0, 50.0, 25.0]);
        b.iter(|| black_box(s.step()));
    });
    group.bench_function("checkpoint_64x64", |b| {
        let s = HeatSolver::new(64, 64, [100.0, 0.0, 50.0, 25.0]);
        b.iter(|| black_box(s.checkpoint()));
    });
    group.finish();
}

criterion_group!(benches, bench_guard, bench_ecc, bench_solver);
criterion_main!(benches);
