//! One benchmark per paper table/figure, each driving the experiment
//! harness end-to-end at micro scale. These are the regeneration targets
//! DESIGN.md §3 maps to the evaluation section; `cargo bench -p sefi-bench
//! --bench experiments` exercises all of them.

use criterion::{criterion_group, criterion_main, Criterion};
use sefi_experiments::{
    exp_bitranges, exp_curves, exp_equivalent, exp_heatmap, exp_layers, exp_masks, exp_nev,
    exp_predict, exp_propagation, exp_rwc, Budget, Prebaked,
};
use sefi_float::Precision;
use sefi_frameworks::FrameworkKind;
use sefi_models::{LayerRole, ModelKind};
use std::hint::black_box;

/// A micro budget so each regeneration fits a Criterion iteration.
fn micro() -> Budget {
    Budget {
        trials: 2,
        curve_trials: 1,
        restart_epoch: 1,
        resume_epochs: 1,
        curve_end_epoch: 2,
        predict_trials: 1,
        predict_images: 30,
        fig2_trainings: 1,
        ..Budget::smoke()
    }
}

fn pre() -> Prebaked {
    let pre = Prebaked::new(micro());
    // Warm the pretraining cache outside the timed region.
    for model in ModelKind::all() {
        let _ = pre.checkpoint(FrameworkKind::Chainer, model, sefi_hdf5::Dtype::F64);
    }
    pre
}

fn bench_tables(c: &mut Criterion) {
    let pre = pre();
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);
    group.bench_function("table4_nev_cell", |b| {
        b.iter(|| {
            black_box(exp_nev::nev_cell(
                &pre,
                FrameworkKind::Chainer,
                ModelKind::AlexNet,
                Precision::Fp64,
                100,
                2,
            ))
        });
    });
    group.bench_function("table5_rwc_cell", |b| {
        b.iter(|| {
            black_box(exp_rwc::rwc_cell(&pre, FrameworkKind::Chainer, ModelKind::AlexNet, 2))
        });
    });
    group.bench_function("table6_mask_cell", |b| {
        b.iter(|| black_box(exp_masks::mask_cell(&pre, FrameworkKind::Chainer, 6, "11101101")));
    });
    group.bench_function("table7_nev_cell_fp16", |b| {
        b.iter(|| {
            black_box(exp_nev::nev_cell(
                &pre,
                FrameworkKind::Chainer,
                ModelKind::AlexNet,
                Precision::Fp16,
                100,
                2,
            ))
        });
    });
    group.bench_function("table8_predict_cell", |b| {
        let trained = exp_predict::TrainedCheckpoints::new(&pre);
        // Warm the trained-checkpoint cache outside the timed loop.
        let _ = trained.get(ModelKind::AlexNet, sefi_hdf5::Dtype::F32);
        b.iter(|| {
            black_box(exp_predict::predict_cell(&trained, ModelKind::AlexNet, Precision::Fp32, 100))
        });
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let pre = pre();
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(10);
    group.bench_function("fig2_bit_range_sweep", |b| {
        b.iter(|| black_box(exp_bitranges::figure2(&pre)));
    });
    group.bench_function("fig3_corrupted_curve", |b| {
        b.iter(|| {
            black_box(exp_curves::corrupted_curve(
                &pre,
                FrameworkKind::TensorFlow,
                ModelKind::AlexNet,
                100,
                "bench",
            ))
        });
    });
    group.bench_function("fig4_layer_curve", |b| {
        b.iter(|| {
            black_box(exp_layers::layer_curve(
                &pre,
                FrameworkKind::Chainer,
                ModelKind::AlexNet,
                LayerRole::Middle,
            ))
        });
    });
    group.bench_function("fig5_equivalent_replay_curve", |b| {
        let (_, log) = exp_layers::layer_curve(
            &pre,
            FrameworkKind::Chainer,
            ModelKind::AlexNet,
            LayerRole::First,
        );
        b.iter(|| {
            black_box(exp_equivalent::replay_curve(
                &pre,
                FrameworkKind::PyTorch,
                ModelKind::AlexNet,
                LayerRole::First,
                &log,
            ))
        });
    });
    group.bench_function("fig6_propagation", |b| {
        b.iter(|| black_box(exp_propagation::figure6(&pre)));
    });
    group.bench_function("fig7_heat_cell", |b| {
        b.iter(|| black_box(exp_heatmap::heat_cell(&pre, 10, 4500.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
