//! Checkpoint container throughput: encode, decode, and the per-framework
//! save path (including TensorFlow's layout permutations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sefi_bench::synthetic_checkpoint;
use sefi_frameworks::{save_checkpoint, FrameworkKind};
use sefi_hdf5::{Dtype, H5File};
use sefi_models::{alexnet, ModelConfig};
use sefi_rng::DetRng;
use std::hint::black_box;

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_codec");
    for entries in [10_000usize, 100_000] {
        let file = synthetic_checkpoint(entries, Dtype::F32);
        let bytes = file.to_bytes();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", entries), &file, |b, f| {
            b.iter(|| black_box(f.to_bytes()));
        });
        group.bench_with_input(BenchmarkId::new("decode", entries), &bytes, |b, by| {
            b.iter(|| black_box(H5File::from_bytes(by).unwrap()));
        });
    }
    group.finish();
}

fn bench_framework_save(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_checkpoint_save");
    let cfg = ModelConfig { scale: 0.1, input_size: 16, num_classes: 10 };
    let (mut net, _) = alexnet(cfg, &mut DetRng::new(1));
    for fw in FrameworkKind::all() {
        group.bench_function(fw.id(), |b| {
            b.iter(|| black_box(save_checkpoint(fw, &mut net, 20, Dtype::F32)));
        });
    }
    // Precision variants (f16 narrowing vs f64 widening).
    for dtype in [Dtype::F16, Dtype::F32, Dtype::F64] {
        group.bench_function(format!("chainer_{dtype:?}"), |b| {
            b.iter(|| black_box(save_checkpoint(FrameworkKind::Chainer, &mut net, 20, dtype)));
        });
    }
    group.finish();
}

fn bench_entry_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_entry_access");
    let file = synthetic_checkpoint(100_000, Dtype::F64);
    let path = "model/conv1/W";
    group.throughput(Throughput::Elements(25_000));
    group.bench_function("get_set_bits", |b| {
        let mut f = file.clone();
        b.iter(|| {
            let ds = f.dataset_mut(path).unwrap();
            for i in 0..ds.len() {
                let bits = ds.get_bits(i).unwrap();
                ds.set_bits(i, bits ^ 1).unwrap();
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode_decode, bench_framework_save, bench_entry_access);
criterion_main!(benches);
