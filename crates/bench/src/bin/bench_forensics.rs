//! Checkpoint forensics benchmark: sidecar minting, health scans, ECC
//! loads, salvage, and fleet-scan scaling, written to
//! `BENCH_forensics.json` at the repo root.
//!
//! The rows answer the operational questions the forensics suite raises:
//! what does minting parities cost at save time, what does a scan (with
//! and without the full ECC word scrub) cost per checkpoint, how much
//! slower is a [`sefi_hdf5::LoadPolicy::Correct`] load than a plain
//! quarantining one on a clean file, and how does a directory sweep scale
//! across the work-stealing pool. Two determinism checks ride along and
//! fail the run if violated: salvage of the damaged fixture must restore
//! the pristine bytes exactly, and the fleet scan must produce identical
//! per-file verdicts at every worker count.
//!
//! Usage:
//!   bench_forensics [--out PATH] [--smoke]

use rayon::prelude::*;
use sefi_bench::layered_checkpoint;
use sefi_hdf5::forensics::{salvage, scan_bytes, ScanReport};
use sefi_hdf5::{Dtype, EccSidecar, FileIndex, H5File, LoadPolicy};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One measured operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// Stable identifier, e.g. `scan_clean_ecc`.
    name: String,
    /// Mean wall time per iteration.
    ns_per_iter: f64,
    /// Checkpoint-payload throughput where the whole file is processed.
    mb_per_s: f64,
}

/// One fleet-sweep scaling row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FleetRow {
    /// Worker threads the pool was pinned to.
    workers: usize,
    /// Mean wall time for one sweep of the whole fleet.
    ns_per_sweep: f64,
    /// Speedup over the single-worker sweep.
    speedup_vs_1: f64,
}

/// The on-disk result file.
#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    /// File format version.
    schema: u32,
    /// What produced the numbers.
    note: String,
    /// Hardware threads visible during the run.
    host_threads: usize,
    /// Encoded v2 fixture size in bytes.
    v2_bytes: usize,
    /// Serialized sidecar size in bytes.
    sidecar_bytes: usize,
    /// Sidecar size as a fraction of the checkpoint (≈ 1/8 of payload).
    sidecar_overhead: f64,
    /// Checkpoints in the fleet-scan directory.
    fleet_files: usize,
    /// All measured operations.
    entries: Vec<Entry>,
    /// Fleet-sweep scaling rows (1, 2, 4, 8 workers).
    fleet: Vec<FleetRow>,
    /// Correct-policy load time / quarantine load time on a clean file.
    correct_overhead_clean: f64,
}

/// Mean ns/iter of `f` after one warmup call, timed until `min_total`
/// elapses (at least 3, at most `max_iters` runs).
fn time_ns(min_total: Duration, max_iters: u64, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < max_iters && (iters < 3 || start.elapsed() < min_total) {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Sorted per-file scan verdicts of one fleet sweep — the value that must
/// be identical at every worker count.
fn fleet_sweep(files: &[(std::path::PathBuf, Vec<u8>)]) -> Vec<(String, bool, usize)> {
    (0..files.len())
        .into_par_iter()
        .map(|i| {
            let (path, bytes) = &files[i];
            let report: ScanReport = scan_bytes(bytes, None);
            (path.display().to_string(), report.is_clean(), report.damaged_sections())
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_forensics.json".to_string();
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let per_op = if smoke { Duration::from_millis(40) } else { Duration::from_millis(400) };

    // Same fixture scale as bench_ckpt_io: 32 layers × 4096 f32 weights.
    let file = layered_checkpoint(32, 4096, Dtype::F32);
    let v2 = file.to_bytes_v2();
    let sidecar = EccSidecar::protect(&v2).expect("pristine fixture protects");
    let sidecar_ser = sidecar.to_bytes();
    let mb = v2.len() as f64 / 1e6;

    // Damaged twin: one single-bit flip in the middle of every fourth
    // section — all correctable, so salvage must restore pristine bytes.
    let index = FileIndex::parse(&v2).expect("fixture index parses");
    let mut damaged = v2.clone();
    for e in index.entries().iter().step_by(4) {
        damaged[e.offset + e.byte_len / 2] ^= 0x10;
    }

    println!(
        "bench_forensics: v2 {} B, sidecar {} B ({:.1}% overhead) -> {out}",
        v2.len(),
        sidecar_ser.len(),
        100.0 * sidecar_ser.len() as f64 / v2.len() as f64
    );
    let mut entries = Vec::new();
    let mut record = |name: &str, ns: f64, whole_file: bool| {
        let mb_per_s = if whole_file { mb * 1e9 / ns } else { 0.0 };
        println!("  {name:<24} {ns:>12.1} ns/iter");
        entries.push(Entry { name: name.into(), ns_per_iter: ns, mb_per_s });
        ns
    };

    record(
        "protect",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(EccSidecar::protect(std::hint::black_box(&v2)).unwrap());
        }),
        true,
    );
    record(
        "sidecar_decode",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(
                EccSidecar::from_bytes(std::hint::black_box(&sidecar_ser)).unwrap(),
            );
        }),
        false,
    );
    record(
        "scan_clean",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(scan_bytes(std::hint::black_box(&v2), None));
        }),
        true,
    );
    record(
        "scan_clean_ecc",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(scan_bytes(std::hint::black_box(&v2), Some(&sidecar)));
        }),
        true,
    );
    record(
        "scan_damaged_ecc",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(scan_bytes(std::hint::black_box(&damaged), Some(&sidecar)));
        }),
        true,
    );
    let quarantine_clean = record(
        "load_quarantine_clean",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(
                H5File::from_bytes_with_policy(std::hint::black_box(&v2), LoadPolicy::Quarantine)
                    .unwrap(),
            );
        }),
        true,
    );
    let correct_clean = record(
        "load_correct_clean",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(
                H5File::from_bytes_with_ecc(
                    std::hint::black_box(&v2),
                    LoadPolicy::Correct,
                    &sidecar,
                )
                .unwrap(),
            );
        }),
        true,
    );
    record(
        "load_correct_damaged",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(
                H5File::from_bytes_with_ecc(
                    std::hint::black_box(&damaged),
                    LoadPolicy::Correct,
                    &sidecar,
                )
                .unwrap(),
            );
        }),
        true,
    );
    record(
        "salvage_damaged_ecc",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(
                salvage(std::hint::black_box(&damaged), Some(&sidecar), 0).unwrap(),
            );
        }),
        true,
    );

    // Determinism check 1: salvage of the damaged twin restores pristine.
    let (salvaged, report) = salvage(&damaged, Some(&sidecar), 0).unwrap();
    assert!(report.zero_filled.is_empty(), "all damage is single-bit, nothing may be lost");
    assert_eq!(salvaged.to_bytes_v2(), v2, "salvage must restore the pristine bytes exactly");
    println!(
        "  salvage restores pristine bytes: ok ({} sections corrected)",
        report.corrected.len()
    );

    // Fleet sweep: a directory of checkpoints (every third one damaged)
    // swept through the work-stealing pool at 1/2/4/8 workers.
    let fleet_files = if smoke { 8 } else { 32 };
    let files: Vec<(std::path::PathBuf, Vec<u8>)> = (0..fleet_files)
        .map(|k| {
            let bytes = if k % 3 == 2 { damaged.clone() } else { v2.clone() };
            (std::path::PathBuf::from(format!("fleet/ckpt_{k:03}.sefi5")), bytes)
        })
        .collect();
    let reference = fleet_sweep(&files);
    let mut fleet = Vec::new();
    let mut base_ns = 0.0;
    for workers in [1usize, 2, 4, 8] {
        std::env::set_var("RAYON_NUM_THREADS", workers.to_string());
        let ns = time_ns(per_op, 10_000, || {
            std::hint::black_box(fleet_sweep(std::hint::black_box(&files)));
        });
        // Determinism check 2: identical verdicts at every worker count.
        assert_eq!(fleet_sweep(&files), reference, "fleet sweep must not depend on workers");
        if workers == 1 {
            base_ns = ns;
        }
        let speedup = base_ns / ns;
        println!("  fleet_scan_w{workers:<2} {ns:>21.1} ns/sweep ({speedup:.2}x vs 1 worker)");
        fleet.push(FleetRow { workers, ns_per_sweep: ns, speedup_vs_1: speedup });
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    println!("  fleet verdicts identical across 1/2/4/8 workers: ok");

    let result = BenchFile {
        schema: 1,
        note: "checkpoint forensics: protect/scan/salvage/ECC-load costs and \
               fleet-scan scaling; regenerate with \
               `cargo run --release -p sefi-bench --bin bench_forensics`"
            .into(),
        host_threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        v2_bytes: v2.len(),
        sidecar_bytes: sidecar_ser.len(),
        sidecar_overhead: sidecar_ser.len() as f64 / v2.len() as f64,
        fleet_files,
        entries,
        fleet,
        correct_overhead_clean: correct_clean / quarantine_clean,
    };
    let text = serde_json::to_string_pretty(&result).expect("serialize bench file");
    std::fs::write(&out, text + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "  correct-policy overhead on a clean load: {:.2}x vs quarantine",
        result.correct_overhead_clean
    );
}
