//! Serving-path benchmark: dynamic batching vs batch=1, worker scaling,
//! guard overhead, and quarantine-reload failover latency.
//!
//! Unlike `bench_kernels` this file is single-run (no before/after): the
//! comparison the ISSUE gates on is *internal* — batch=1 against dynamic
//! batching on the same engine, and guarded against unguarded forwards on
//! the same replica. Results land in `BENCH_serving.json` at the repo
//! root; CI re-runs the binary at `--smoke` length and asserts the
//! batching speedup and guard-overhead tripwires still clear.
//!
//! Usage:
//!   bench_serving [--out PATH] [--smoke]
//!                 [--assert-speedup FACTOR] [--assert-guard-overhead PCT]

use sefi_frameworks::{load_checkpoint, save_checkpoint, FrameworkKind};
use sefi_hdf5::{Dtype, EccSidecar, H5File};
use sefi_models::{build, ModelConfig, ModelKind};
use sefi_rng::DetRng;
use sefi_serve::{
    calibrate_from_clean_bytes, corpus_images, BatchQueue, EngineConfig, ReplicaSpec, Request,
    ServeEngine,
};
use sefi_tensor::{active_isa_name, cpu_features, kernel_mode, KernelMode, Tensor};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const INPUT: usize = 16;
const DYN_BATCH: usize = 32;

/// One worker-count point of the scaling curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkerPoint {
    /// Worker threads (= replicas) serving the queue.
    workers: usize,
    /// Drained requests per second with dynamic batching.
    rps: f64,
    /// Open-loop latency percentiles at half the drained throughput.
    p50_ns: f64,
    /// 99th percentile.
    p99_ns: f64,
    /// 99.9th percentile.
    p999_ns: f64,
}

/// The on-disk result file.
#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    /// File format version.
    schema: u32,
    /// What produced the numbers.
    note: String,
    /// Kernel generation (`simd`/`tiled`/`naive`) of the run.
    kernel_mode: String,
    /// Microkernel ISA dispatched to.
    isa: String,
    /// Kernel-relevant CPU features detected on the host.
    cpu_features: String,
    /// Hardware threads visible during the run.
    host_threads: usize,
    /// Requests per second at 4 workers, `max_batch = 1`.
    batch1_rps_4w: f64,
    /// Requests per second at 4 workers, dynamic batching.
    dynamic_rps_4w: f64,
    /// `dynamic_rps_4w / batch1_rps_4w` — the ISSUE's >= 2x gate.
    batching_speedup_4w: f64,
    /// Guarded-over-unguarded forward cost, percent — the < 5% gate.
    guard_overhead_pct: f64,
    /// Steady-state ns to serve one dynamic batch on a healthy replica.
    clean_batch_ns: f64,
    /// ns to serve the same batch through trip + quarantine reload +
    /// canary + re-serve after an in-memory weight flip.
    reload_failover_ns: f64,
    /// Worker scaling curve.
    workers: Vec<WorkerPoint>,
}

fn engine_config(max_batch: usize) -> EngineConfig {
    EngineConfig {
        fw: FrameworkKind::Chainer,
        model: ModelKind::AlexNet,
        model_config: ModelConfig { scale: 0.05, input_size: INPUT, num_classes: 10 },
        dtype: Dtype::F32,
        max_batch,
        batch_window: Duration::from_micros(200),
        guard_slack: 0.5,
    }
}

struct Fixture {
    clean_bytes: Vec<u8>,
    sidecar: EccSidecar,
    path: PathBuf,
    corpus: Vec<Vec<f32>>,
    batches: Vec<Tensor>,
}

impl Fixture {
    fn mint(corpus_n: usize) -> Fixture {
        let cfg = engine_config(DYN_BATCH);
        let (mut net, _) = build(cfg.model, cfg.model_config, &mut DetRng::new(0xBE4C));
        let clean_bytes = save_checkpoint(cfg.fw, &mut net, 1, cfg.dtype).to_bytes_v2();
        let sidecar = EccSidecar::protect(&clean_bytes).expect("sidecar");
        let dir = std::env::temp_dir().join(format!("sefi-bench-serving-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("replica.h5");
        std::fs::write(&path, &clean_bytes).expect("write replica file");
        let corpus = corpus_images(corpus_n, INPUT, 7);
        let batches = corpus
            .chunks(DYN_BATCH)
            .map(|chunk| {
                let mut data = Vec::new();
                for img in chunk {
                    data.extend_from_slice(img);
                }
                Tensor::from_vec(data, &[chunk.len(), 3, INPUT, INPUT])
            })
            .collect();
        Fixture { clean_bytes, sidecar, path, corpus, batches }
    }

    /// A pool of `replicas` slots, every slot backed by the same clean
    /// file (the bench never corrupts the file, only in-memory weights).
    fn engine(&self, max_batch: usize, replicas: usize) -> Arc<ServeEngine> {
        let cfg = engine_config(max_batch);
        let specs: Vec<ReplicaSpec> = (0..replicas)
            .map(|_| ReplicaSpec { path: self.path.clone(), sidecar: Some(self.sidecar.clone()) })
            .collect();
        let env = Arc::new(
            calibrate_from_clean_bytes(&cfg, &self.clean_bytes, &self.batches)
                .expect("clean bytes calibrate"),
        );
        Arc::new(
            ServeEngine::new(cfg, &specs, env, self.batches[0].clone(), None, "bench")
                .expect("pool loads"),
        )
    }

    fn requests(&self, n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                id: i as u64,
                tag: 0,
                image: self.corpus[i % self.corpus.len()].clone(),
            })
            .collect()
    }
}

fn spawn_workers(
    engine: &Arc<ServeEngine>,
    queue: &Arc<BatchQueue>,
    workers: usize,
    deliver: impl Fn(sefi_serve::Answer) + Send + Sync + Clone + 'static,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..workers)
        .map(|w| {
            let engine = Arc::clone(engine);
            let queue = Arc::clone(queue);
            let deliver = deliver.clone();
            std::thread::spawn(move || engine.run_worker(w, &queue, &deliver))
        })
        .collect()
}

/// Saturated drain: pre-fill the queue, close it, and time the workers
/// emptying it. Requests per second of pure service capacity.
fn drain_rps(fixture: &Fixture, max_batch: usize, workers: usize, n: usize) -> f64 {
    let engine = fixture.engine(max_batch, workers);
    let queue = Arc::new(BatchQueue::new());
    let handles = spawn_workers(&engine, &queue, workers, |_| {});
    let reqs = fixture.requests(n);
    let t0 = Instant::now();
    for r in reqs {
        assert!(queue.push(r));
    }
    queue.close();
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(engine.totals().requests, n as u64);
    n as f64 / secs
}

/// Open-loop latency at `rate_hz`: arrivals on a fixed schedule, latency
/// measured against the *scheduled* send time (coordinated-omission
/// safe). Returns sorted per-request latencies in ns.
fn paced_latencies(fixture: &Fixture, workers: usize, n: usize, rate_hz: f64) -> Vec<u64> {
    let engine = fixture.engine(DYN_BATCH, workers);
    let queue = Arc::new(BatchQueue::new());
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
    let start = Instant::now();
    let handles = {
        let latencies = Arc::clone(&latencies);
        let period = Duration::from_secs_f64(1.0 / rate_hz);
        spawn_workers(&engine, &queue, workers, move |a| {
            let due = start + period * (a.id as u32);
            let lat = Instant::now().saturating_duration_since(due).as_nanos() as u64;
            latencies.lock().unwrap().push(lat);
        })
    };
    let period = Duration::from_secs_f64(1.0 / rate_hz);
    for r in fixture.requests(n) {
        let due = start + period * (r.id as u32);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        assert!(queue.push(r));
    }
    queue.close();
    for h in handles {
        h.join().unwrap();
    }
    let mut out = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    assert_eq!(out.len(), n);
    out.sort_unstable();
    out
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1] as f64
}

/// Guarded vs unguarded forward on the same replica weights: the
/// envelope checks' per-batch cost as a percentage.
fn guard_overhead_pct(fixture: &Fixture, iters: usize) -> f64 {
    let cfg = engine_config(DYN_BATCH);
    let file = H5File::from_bytes(&fixture.clean_bytes).expect("clean bytes decode");
    let (mut net, _) = build(cfg.model, cfg.model_config, &mut DetRng::new(0));
    load_checkpoint(cfg.fw, &mut net, &file).expect("clean checkpoint loads");
    let env = net.calibrate_envelopes(&fixture.batches, cfg.guard_slack, "bench", "f32");
    let x = fixture.batches[0].clone();
    for _ in 0..3 {
        std::hint::black_box(net.forward(x.clone(), false));
        net.forward_guarded(x.clone(), &env).expect("clean forward");
    }
    // Alternate timed *blocks* (not single calls) so scheduler noise and
    // clock drift hit both sides equally while each measurement still
    // amortises over many forwards; keep the fastest block per side —
    // one-core hosts get preempted, and preemption only ever adds time.
    let block = (iters / 4).max(5);
    let mut plain_ns = u128::MAX;
    let mut guarded_ns = u128::MAX;
    for _ in 0..4 {
        let t0 = Instant::now();
        for _ in 0..block {
            std::hint::black_box(net.forward(x.clone(), false));
        }
        plain_ns = plain_ns.min(t0.elapsed().as_nanos());
        let t1 = Instant::now();
        for _ in 0..block {
            std::hint::black_box(net.forward_guarded(x.clone(), &env).expect("clean forward"));
        }
        guarded_ns = guarded_ns.min(t1.elapsed().as_nanos());
    }
    100.0 * (guarded_ns as f64 - plain_ns as f64) / plain_ns as f64
}

/// Clean-batch vs trip-reload-reserve latency on a two-replica pool.
fn failover_latency(fixture: &Fixture) -> (f64, f64) {
    let engine = fixture.engine(DYN_BATCH, 2);
    let reqs = fixture.requests(DYN_BATCH);
    engine.serve_with_failover(0, &reqs); // warm both paths
    let t0 = Instant::now();
    engine.serve_with_failover(0, &reqs);
    let clean_ns = t0.elapsed().as_nanos() as f64;
    engine.poison_replica(0);
    let t1 = Instant::now();
    engine.serve_with_failover(0, &reqs);
    let failover_ns = t1.elapsed().as_nanos() as f64;
    let totals = engine.totals();
    assert!(totals.guard_trips >= 1 && totals.reloads >= 1, "poison must trip and reload");
    assert_eq!(engine.healthy(), vec![true, true], "clean file readmits the replica");
    (clean_ns, failover_ns)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_serving.json".to_string();
    let mut smoke = false;
    let mut assert_speedup: Option<f64> = None;
    let mut assert_guard: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--smoke" => smoke = true,
            "--assert-speedup" => {
                i += 1;
                assert_speedup = Some(args[i].parse().expect("speedup factor"));
            }
            "--assert-guard-overhead" => {
                i += 1;
                assert_guard = Some(args[i].parse().expect("overhead percent"));
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    let (drain_n, paced_n, guard_iters) = if smoke { (768, 256, 40) } else { (4096, 1024, 200) };
    let mode = match kernel_mode() {
        KernelMode::Simd => "simd",
        KernelMode::Tiled => "tiled",
        KernelMode::Naive => "naive",
    };
    let isa = if kernel_mode() == KernelMode::Simd { active_isa_name() } else { "scalar" };
    println!(
        "bench_serving: kernels={mode} isa={isa} cpu={} smoke={smoke} -> {out}",
        cpu_features()
    );
    let fixture = Fixture::mint(64);

    let batch1 = drain_rps(&fixture, 1, 4, drain_n);
    let dynamic = drain_rps(&fixture, DYN_BATCH, 4, drain_n);
    let speedup = dynamic / batch1;
    println!(
        "  4 workers: batch=1 {batch1:>9.0} req/s, dynamic {dynamic:>9.0} req/s ({speedup:.2}x)"
    );

    let mut points = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let rps = drain_rps(&fixture, DYN_BATCH, workers, drain_n);
        let lat = paced_latencies(&fixture, workers, paced_n, (rps * 0.5).max(50.0));
        let point = WorkerPoint {
            workers,
            rps,
            p50_ns: percentile(&lat, 50.0),
            p99_ns: percentile(&lat, 99.0),
            p999_ns: percentile(&lat, 99.9),
        };
        println!(
            "  {workers} worker(s): {:>9.0} req/s  p50 {:.2}ms p99 {:.2}ms p999 {:.2}ms",
            point.rps,
            point.p50_ns / 1e6,
            point.p99_ns / 1e6,
            point.p999_ns / 1e6
        );
        points.push(point);
    }

    let overhead = guard_overhead_pct(&fixture, guard_iters);
    println!("  guard overhead: {overhead:.2}% per batch");
    let (clean_ns, failover_ns) = failover_latency(&fixture);
    println!(
        "  failover: clean batch {:.2}ms, trip+reload+re-serve {:.2}ms",
        clean_ns / 1e6,
        failover_ns / 1e6
    );

    let file = BenchFile {
        schema: 1,
        note: "serving-path throughput/latency; regenerate with \
               `cargo run --release -p sefi-bench --bin bench_serving`"
            .into(),
        kernel_mode: mode.to_string(),
        isa: isa.to_string(),
        cpu_features: cpu_features().to_string(),
        host_threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        batch1_rps_4w: batch1,
        dynamic_rps_4w: dynamic,
        batching_speedup_4w: speedup,
        guard_overhead_pct: overhead,
        clean_batch_ns: clean_ns,
        reload_failover_ns: failover_ns,
        workers: points,
    };
    let text = serde_json::to_string_pretty(&file).expect("serialize bench file");
    std::fs::write(&out, text + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));

    let mut failed = false;
    if let Some(want) = assert_speedup {
        let ok = speedup >= want;
        println!(
            "  assert batching speedup {speedup:.2} >= {want:.2} ... {}",
            if ok { "ok" } else { "FAIL" }
        );
        failed |= !ok;
    }
    if let Some(want) = assert_guard {
        let ok = overhead <= want;
        println!(
            "  assert guard overhead {overhead:.2}% <= {want:.2}% ... {}",
            if ok { "ok" } else { "FAIL" }
        );
        failed |= !ok;
    }
    if failed {
        std::process::exit(1);
    }
}
