//! Checkpoint container I/O benchmark: v1 (monolithic, whole-payload CRC)
//! vs v2 (sectioned, indexed, per-section CRC), written to
//! `BENCH_ckpt_io.json` at the repo root.
//!
//! The headline measurement is the one the v2 format exists for: loading a
//! *single* dataset. v1 must decode the entire file to reach any value;
//! v2's [`sefi_hdf5::IndexedFile`] reads the 24-byte superblock, the index,
//! and exactly one payload section. Both sides are measured from disk and
//! in memory, alongside full encode/decode throughput so the per-section
//! bookkeeping overhead stays visible.
//!
//! Usage:
//!   bench_ckpt_io [--out PATH] [--smoke] [--assert-lazy-speedup FACTOR]

use sefi_bench::layered_checkpoint;
use sefi_hdf5::{Dtype, H5File};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One measured operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// Stable identifier, e.g. `v2_lazy_single_dataset`.
    name: String,
    /// Mean wall time per iteration.
    ns_per_iter: f64,
    /// Payload throughput where a whole file is processed (0 for the lazy
    /// rows, which deliberately touch only a sliver of it).
    mb_per_s: f64,
}

/// The on-disk result file.
#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    /// File format version.
    schema: u32,
    /// What produced the numbers.
    note: String,
    /// Hardware threads visible during the run.
    host_threads: usize,
    /// Datasets in the fixture checkpoint.
    fixture_datasets: usize,
    /// Encoded v1 size in bytes.
    v1_bytes: usize,
    /// Encoded v2 size in bytes (index overhead included).
    v2_bytes: usize,
    /// All measured operations.
    entries: Vec<Entry>,
    /// v1 full-decode time / v2 lazy single-dataset time (in memory).
    lazy_speedup_vs_v1_full_decode: f64,
    /// v1 disk-load-then-read time / v2 indexed-open-then-read time.
    lazy_speedup_vs_v1_disk_load: f64,
}

/// Mean ns/iter of `f` after one warmup call, timed until `min_total`
/// elapses (at least 3, at most `max_iters` runs).
fn time_ns(min_total: Duration, max_iters: u64, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < max_iters && (iters < 3 || start.elapsed() < min_total) {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_ckpt_io.json".to_string();
    let mut smoke = false;
    let mut assert_lazy: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--smoke" => smoke = true,
            "--assert-lazy-speedup" => {
                i += 1;
                assert_lazy = Some(args[i].parse().expect("speedup factor"));
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let per_op = if smoke { Duration::from_millis(40) } else { Duration::from_millis(400) };

    // 32 layers × 4096 f32 weights + biases ≈ 0.5 MiB payload over 64
    // datasets — big enough that full decode dominates, small enough that
    // the page cache keeps disk rows measuring format cost, not the drive.
    let file = layered_checkpoint(32, 4096, Dtype::F32);
    let v1 = file.to_bytes();
    let v2 = file.to_bytes_v2();
    let target = "model/layer17/W";
    let mb = v1.len() as f64 / 1e6;

    let dir = std::env::temp_dir().join(format!("sefi_bench_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let v1_path = dir.join("ckpt_v1.h5");
    let v2_path = dir.join("ckpt_v2.h5");
    file.save(&v1_path).expect("write v1 fixture");
    file.save_v2(&v2_path).expect("write v2 fixture");

    println!("bench_ckpt_io: {} datasets, v1 {} B, v2 {} B -> {out}", 64, v1.len(), v2.len());
    let mut entries = Vec::new();
    let mut record = |name: &str, ns: f64, whole_file: bool| {
        let mb_per_s = if whole_file { mb * 1e9 / ns } else { 0.0 };
        println!("  {name:<24} {ns:>12.1} ns/iter");
        entries.push(Entry { name: name.into(), ns_per_iter: ns, mb_per_s });
        ns
    };

    record(
        "v1_encode",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(std::hint::black_box(&file).to_bytes());
        }),
        true,
    );
    record(
        "v2_encode",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(std::hint::black_box(&file).to_bytes_v2());
        }),
        true,
    );
    let v1_decode = record(
        "v1_decode_full",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(H5File::from_bytes(std::hint::black_box(&v1)).unwrap());
        }),
        true,
    );
    record(
        "v2_decode_full",
        time_ns(per_op, 100_000, || {
            std::hint::black_box(H5File::from_bytes(std::hint::black_box(&v2)).unwrap());
        }),
        true,
    );
    let v2_lazy = record(
        "v2_lazy_single_dataset",
        time_ns(per_op, 100_000, || {
            let mut indexed = H5File::open_indexed(std::hint::black_box(&v2_path)).unwrap();
            std::hint::black_box(indexed.dataset(target).unwrap());
        }),
        false,
    );
    let v1_disk = record(
        "v1_disk_single_dataset",
        time_ns(per_op, 100_000, || {
            let f = H5File::load(std::hint::black_box(&v1_path)).unwrap();
            std::hint::black_box(f.dataset(target).unwrap().clone());
        }),
        false,
    );

    let _ = std::fs::remove_dir_all(&dir);

    let result = BenchFile {
        schema: 1,
        note: "v1 vs v2 checkpoint container I/O; regenerate with \
               `cargo run --release -p sefi-bench --bin bench_ckpt_io`"
            .into(),
        host_threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        fixture_datasets: 64,
        v1_bytes: v1.len(),
        v2_bytes: v2.len(),
        entries,
        lazy_speedup_vs_v1_full_decode: v1_decode / v2_lazy,
        lazy_speedup_vs_v1_disk_load: v1_disk / v2_lazy,
    };
    let text = serde_json::to_string_pretty(&result).expect("serialize bench file");
    std::fs::write(&out, text + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "  lazy single-dataset speedup: {:.2}x vs v1 full decode, {:.2}x vs v1 disk load",
        result.lazy_speedup_vs_v1_full_decode, result.lazy_speedup_vs_v1_disk_load
    );

    if let Some(want) = assert_lazy {
        let got = result.lazy_speedup_vs_v1_full_decode;
        let ok = got >= want;
        println!(
            "  assert lazy speedup {got:.2} >= {want:.2} ... {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            std::process::exit(1);
        }
    }
}
