//! Mixed-precision checkpoint footprint benchmark: the v2 container's
//! byte size and load time per storage dtype (f16 / bf16 / f32 / f64 /
//! i8q), written to `BENCH_precision.json` at the repo root.
//!
//! This is the cost side of the equivalent-injection experiment: the
//! `exp_precision` bin measures what each format does to fault outcomes;
//! this bin measures what each format costs on disk and at restore time.
//! The same 64-dataset fixture is encoded once per dtype, so the size
//! column is the format curve (i8q < f16 = bf16 < f32 < f64 plus fixed
//! container overhead) and the decode/load rows track how the element
//! width scales through the full v2 parse and the indexed single-dataset
//! path.
//!
//! Usage:
//!   bench_precision [--out PATH] [--smoke] [--assert-size-order]

use sefi_bench::layered_checkpoint;
use sefi_hdf5::{Dtype, H5File};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One storage format's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FormatEntry {
    /// Format label (`f16`, `bf16`, `f32`, `f64`, `i8q`).
    format: String,
    /// Bytes per element in the payload sections.
    element_bytes: usize,
    /// Encoded v2 container size in bytes (index overhead included).
    v2_bytes: usize,
    /// Mean full-decode time from bytes in memory.
    decode_ns_per_iter: f64,
    /// Mean disk-load-plus-full-decode time.
    disk_load_ns_per_iter: f64,
    /// Mean indexed-open-plus-single-dataset time from disk.
    lazy_single_dataset_ns_per_iter: f64,
}

/// The on-disk result file.
#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    /// File format version.
    schema: u32,
    /// What produced the numbers.
    note: String,
    /// Hardware threads visible during the run.
    host_threads: usize,
    /// Datasets in the fixture checkpoint.
    fixture_datasets: usize,
    /// Elements in the fixture checkpoint.
    fixture_elements: usize,
    /// Per-format size/time curve, narrowest format first.
    formats: Vec<FormatEntry>,
}

/// Mean ns/iter of `f` after one warmup call, timed until `min_total`
/// elapses (at least 3, at most `max_iters` runs).
fn time_ns(min_total: Duration, max_iters: u64, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < max_iters && (iters < 3 || start.elapsed() < min_total) {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_precision.json".to_string();
    let mut smoke = false;
    let mut assert_order = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--smoke" => smoke = true,
            "--assert-size-order" => assert_order = true,
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let per_op = if smoke { Duration::from_millis(40) } else { Duration::from_millis(400) };

    const LAYERS: usize = 32;
    const PER_LAYER: usize = 4096;
    let fixture_datasets = LAYERS * 2;
    let fixture_elements = LAYERS * (PER_LAYER + 8);
    let sweep: [(Dtype, &str); 5] = [
        (Dtype::I8Q, "i8q"),
        (Dtype::F16, "f16"),
        (Dtype::BF16, "bf16"),
        (Dtype::F32, "f32"),
        (Dtype::F64, "f64"),
    ];

    let dir = std::env::temp_dir().join(format!("sefi_bench_prec_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");

    println!("bench_precision: {fixture_datasets} datasets x {} dtypes -> {out}", sweep.len());
    let mut formats = Vec::new();
    for (dtype, label) in sweep {
        let file = layered_checkpoint(LAYERS, PER_LAYER, dtype);
        let v2 = file.to_bytes_v2();
        let path = dir.join(format!("ckpt_{label}.h5"));
        file.save_v2(&path).expect("write fixture");
        let target = "model/layer17/W";

        let decode = time_ns(per_op, 100_000, || {
            std::hint::black_box(H5File::from_bytes(std::hint::black_box(&v2)).unwrap());
        });
        let disk = time_ns(per_op, 100_000, || {
            std::hint::black_box(H5File::load(std::hint::black_box(&path)).unwrap());
        });
        let lazy = time_ns(per_op, 100_000, || {
            let mut indexed = H5File::open_indexed(std::hint::black_box(&path)).unwrap();
            std::hint::black_box(indexed.dataset(target).unwrap());
        });
        println!(
            "  {label:<5} {:>9} B  decode {decode:>11.1} ns  disk {disk:>11.1} ns  \
             lazy {lazy:>9.1} ns",
            v2.len()
        );
        formats.push(FormatEntry {
            format: label.into(),
            element_bytes: dtype.size(),
            v2_bytes: v2.len(),
            decode_ns_per_iter: decode,
            disk_load_ns_per_iter: disk,
            lazy_single_dataset_ns_per_iter: lazy,
        });
    }

    let _ = std::fs::remove_dir_all(&dir);

    let result = BenchFile {
        schema: 1,
        note: "v2 checkpoint size/load-time per storage dtype; regenerate with \
               `cargo run --release -p sefi-bench --bin bench_precision`"
            .into(),
        host_threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        fixture_datasets,
        fixture_elements,
        formats,
    };
    let text = serde_json::to_string_pretty(&result).expect("serialize bench file");
    std::fs::write(&out, text + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));

    if assert_order {
        // The size floor: each format must cost at least element_bytes per
        // element (no silent payload truncation), and the curve must be
        // non-decreasing in element width — a regression in either
        // direction means the encoder dropped sections or stopped packing
        // at the native width.
        let mut ok = true;
        for e in &result.formats {
            let floor = fixture_elements * e.element_bytes;
            let within = e.v2_bytes >= floor;
            println!(
                "  size floor {:>5}: {} >= {floor} ... {}",
                e.format,
                e.v2_bytes,
                if within { "ok" } else { "FAIL" }
            );
            ok &= within;
        }
        for pair in result.formats.windows(2) {
            let ordered = pair[0].element_bytes < pair[1].element_bytes
                || pair[0].v2_bytes == pair[1].v2_bytes;
            let monotone = pair[0].v2_bytes <= pair[1].v2_bytes && ordered;
            println!(
                "  size order {} <= {} ... {}",
                pair[0].format,
                pair[1].format,
                if monotone { "ok" } else { "FAIL" }
            );
            ok &= monotone;
        }
        if !ok {
            std::process::exit(1);
        }
    }
}
