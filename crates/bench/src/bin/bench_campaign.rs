//! Campaign scheduler benchmark: per-cell barrier fan-out vs the
//! campaign-wide work-stealing pool, written to `BENCH_campaign.json` at
//! the repo root.
//!
//! The workload models a real campaign phase: many cells with
//! *heterogeneous* trial counts and per-trial latencies (deterministic
//! sleeps derived from each trial's seed, so every mode and thread count
//! runs the exact same work). The "barrier" baseline dispatches one cell
//! at a time and joins between cells — the shape every table builder had
//! before the plan API. The "pool" run submits all cells as one
//! [`sefi_experiments::CellPlan`] slice, so workers that finish a short
//! cell immediately steal trials from a long one.
//!
//! Sleeps (not spins) carry the latency so the measured speedup is pure
//! scheduling overlap — it holds even on a single-core host, where idle
//! threads cost nothing. Alongside the wall clocks, the benchmark renders
//! the phase's outcome table once per configuration and asserts all
//! renderings are byte-identical: determinism is part of the contract
//! being benchmarked.
//!
//! Usage:
//!   bench_campaign [--out PATH] [--smoke] [--assert-speedup FACTOR]

use sefi_experiments::{Budget, CellPlan, Prebaked, TrialOutcome};
use sefi_frameworks::FrameworkKind;
use sefi_models::ModelKind;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One pool measurement at a fixed worker count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PoolEntry {
    /// Worker threads (`RAYON_NUM_THREADS`).
    threads: usize,
    /// Wall-clock for the whole phase as one pool.
    wall_ms: f64,
    /// Barrier wall / this wall.
    speedup_vs_barrier: f64,
}

/// The on-disk result file.
#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    /// File format version.
    schema: u32,
    /// What produced the numbers.
    note: String,
    /// Hardware threads visible during the run.
    host_threads: usize,
    /// Cells in the synthetic phase.
    cells: usize,
    /// Total `(cell, trial)` pairs dispatched.
    total_trials: usize,
    /// Per-cell-barrier wall-clock at the max worker count.
    barrier_wall_ms: f64,
    /// Pool wall-clock at 1/2/4/8 workers.
    pool: Vec<PoolEntry>,
    /// Barrier wall / pool wall at the max worker count.
    speedup: f64,
    /// Whether every rendered table matched the single-threaded rendering.
    tables_identical: bool,
}

/// The synthetic phase: `cells` cells with 1–4 trials each. Every trial
/// sleeps `sleep_floor_ms + seed % sleep_spread_ms` milliseconds — seeds
/// come from [`sefi_experiments::combo_seed`], so the latency profile is
/// identical across modes and thread counts.
struct Workload {
    cells: usize,
    sleep_floor_ms: u64,
    sleep_spread_ms: u64,
}

impl Workload {
    fn plans<'p>(&self, _pre: &'p Prebaked) -> Vec<CellPlan<'p>> {
        let (floor, spread) = (self.sleep_floor_ms, self.sleep_spread_ms);
        (0..self.cells)
            .map(|i| {
                let fw = FrameworkKind::all()[i % 3];
                let model = ModelKind::all()[i % 3];
                let trials = 1 + i % 4;
                CellPlan::new("bench", format!("cell-{i:02}"), fw, model, trials, move |_, seed| {
                    std::thread::sleep(Duration::from_millis(floor + seed % spread));
                    Ok(TrialOutcome::ok().with_accuracy((seed % 1000) as f64 / 1000.0))
                })
            })
            .collect()
    }
}

/// Render the phase's outcome table — the byte-identity artifact.
fn render(plans: &[CellPlan<'_>], pooled: &[Vec<TrialOutcome>]) -> String {
    let mut table = sefi_experiments::table::TextTable::new(&["Cell", "Trials", "Mean acc"]);
    for (plan, outcomes) in plans.iter().zip(pooled) {
        let mean = outcomes.iter().filter_map(|o| o.final_accuracy).sum::<f64>()
            / outcomes.len().max(1) as f64;
        table.row(vec![plan.cell().to_string(), plan.trials().to_string(), format!("{mean:.6}")]);
    }
    table.render()
}

fn set_threads(n: usize) {
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_campaign.json".to_string();
    let mut smoke = false;
    let mut assert_speedup: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--smoke" => smoke = true,
            "--assert-speedup" => {
                i += 1;
                assert_speedup = Some(args[i].parse().expect("speedup factor"));
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let workload = if smoke {
        Workload { cells: 16, sleep_floor_ms: 1, sleep_spread_ms: 5 }
    } else {
        Workload { cells: 24, sleep_floor_ms: 2, sleep_spread_ms: 11 }
    };
    let thread_counts = [1usize, 2, 4, 8];
    let max_threads = *thread_counts.last().unwrap();

    // No campaign: a manifest would serve the second run from cache and
    // benchmark the JSON reader instead of the scheduler.
    let pre = Prebaked::new(Budget::smoke());
    let plans = workload.plans(&pre);
    let total_trials: usize = plans.iter().map(|p| p.trials()).sum();
    println!("bench_campaign: {} cells, {} trials -> {out}", plans.len(), total_trials);

    // Warmup: first dispatch pays thread spawn + lazy init for both modes.
    set_threads(max_threads);
    let _ = pre.run_plan(&plans[..1]);

    // Baseline: one pool per cell, join between cells — the pre-plan-API
    // shape (parallel within a cell, barrier after it).
    let start = Instant::now();
    let barrier_pooled: Vec<Vec<TrialOutcome>> =
        plans.iter().flat_map(|p| pre.run_plan(std::slice::from_ref(p))).collect();
    let barrier_wall = start.elapsed().as_secs_f64() * 1e3;
    let reference_table = render(&plans, &barrier_pooled);
    println!("  barrier ({max_threads} threads)      {barrier_wall:>9.1} ms");

    let mut pool = Vec::new();
    let mut tables_identical = true;
    for &n in &thread_counts {
        set_threads(n);
        let start = Instant::now();
        let pooled = pre.run_plan(&plans);
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let identical = render(&plans, &pooled) == reference_table;
        tables_identical &= identical;
        println!(
            "  pool @ {n} thread{}       {wall:>9.1} ms  ({:.2}x{})",
            if n == 1 { " " } else { "s" },
            barrier_wall / wall,
            if identical { "" } else { ", TABLE MISMATCH" },
        );
        pool.push(PoolEntry { threads: n, wall_ms: wall, speedup_vs_barrier: barrier_wall / wall });
    }
    let speedup = pool.last().map(|p| p.speedup_vs_barrier).unwrap_or(0.0);

    let result = BenchFile {
        schema: 1,
        note: "per-cell-barrier fan-out vs campaign-wide work-stealing pool; \
               regenerate with `cargo run --release -p sefi-bench --bin bench_campaign`"
            .into(),
        host_threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        cells: plans.len(),
        total_trials,
        barrier_wall_ms: barrier_wall,
        pool,
        speedup,
        tables_identical,
    };
    let text = serde_json::to_string_pretty(&result).expect("serialize bench file");
    std::fs::write(&out, text + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("  pool speedup at {max_threads} threads: {speedup:.2}x; tables identical: {tables_identical}");

    if !tables_identical {
        eprintln!("  FAIL: rendered tables differ across modes/thread counts");
        std::process::exit(1);
    }
    if let Some(want) = assert_speedup {
        let ok = speedup >= want;
        println!(
            "  assert speedup {speedup:.2} >= {want:.2} ... {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            std::process::exit(1);
        }
    }
}
