//! Campaign scheduler benchmark: per-cell barrier fan-out vs the
//! campaign-wide work-stealing pool, written to `BENCH_campaign.json` at
//! the repo root.
//!
//! The workload models a real campaign phase: many cells with
//! *heterogeneous* trial counts and per-trial latencies (deterministic
//! sleeps derived from each trial's seed, so every mode and thread count
//! runs the exact same work). The "barrier" baseline dispatches one cell
//! at a time and joins between cells — the shape every table builder had
//! before the plan API. The "pool" run submits all cells as one
//! [`sefi_experiments::CellPlan`] slice, so workers that finish a short
//! cell immediately steal trials from a long one.
//!
//! Sleeps (not spins) carry the latency so the measured speedup is pure
//! scheduling overlap — it holds even on a single-core host, where idle
//! threads cost nothing. Alongside the wall clocks, the benchmark renders
//! the phase's outcome table once per configuration and asserts all
//! renderings are byte-identical: determinism is part of the contract
//! being benchmarked.
//!
//! Two adaptive-campaign sections ride along:
//!
//! - **adaptive vs fixed**: the real (smoke-budget) Figure 2 sweep run
//!   fixed-budget and under the sequential stopping rule, comparing trial
//!   counts and checking the per-range collapse verdicts agree
//!   (`--assert-trial-savings FRACTION` gates the saving in CI);
//! - **sharded scaling**: 1/2/4 `sefi-campaign-worker` processes over one
//!   results directory each regenerate the adaptive sweep; the resulting
//!   CSVs must be byte-identical at every process count.
//!
//! Usage:
//!   bench_campaign [--out PATH] [--smoke] [--assert-speedup FACTOR]
//!                  [--assert-trial-savings FRACTION] [--worker-bin PATH]

use sefi_experiments::{exp_bitranges, Budget, CellPlan, Prebaked, StoppingRule, TrialOutcome};
use sefi_frameworks::FrameworkKind;
use sefi_models::ModelKind;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One pool measurement at a fixed worker count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PoolEntry {
    /// Worker threads (`RAYON_NUM_THREADS`).
    threads: usize,
    /// Wall-clock for the whole phase as one pool.
    wall_ms: f64,
    /// Barrier wall / this wall.
    speedup_vs_barrier: f64,
}

/// The on-disk result file.
#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    /// File format version.
    schema: u32,
    /// What produced the numbers.
    note: String,
    /// Hardware threads visible during the run.
    host_threads: usize,
    /// Cells in the synthetic phase.
    cells: usize,
    /// Total `(cell, trial)` pairs dispatched.
    total_trials: usize,
    /// Per-cell-barrier wall-clock at the max worker count.
    barrier_wall_ms: f64,
    /// Pool wall-clock at 1/2/4/8 workers.
    pool: Vec<PoolEntry>,
    /// Barrier wall / pool wall at the max worker count.
    speedup: f64,
    /// Whether every rendered table matched the single-threaded rendering.
    tables_identical: bool,
    /// Adaptive-vs-fixed comparison on the smoke Figure 2 sweep.
    adaptive: AdaptiveEntry,
    /// Sharded worker-process scaling (empty when the worker binary was
    /// not found next to this benchmark).
    sharded: Vec<ShardedEntry>,
    /// Whether every sharded CSV matched the 1-process CSV byte for byte.
    sharded_identical: bool,
}

/// Adaptive sequential stopping vs the fixed budget on the same sweep.
#[derive(Debug, Serialize, Deserialize)]
struct AdaptiveEntry {
    /// Trials the fixed-budget sweep dispatched.
    fixed_trials: usize,
    /// Trials the adaptive sweep consumed.
    adaptive_trials: usize,
    /// `1 - adaptive/fixed`.
    savings: f64,
    /// Per-range collapse verdicts agree between the two sweeps.
    verdicts_match: bool,
    /// Fixed sweep wall-clock.
    fixed_wall_ms: f64,
    /// Adaptive sweep wall-clock.
    adaptive_wall_ms: f64,
}

/// One sharded run: N worker processes over one results directory.
#[derive(Debug, Serialize, Deserialize)]
struct ShardedEntry {
    /// Concurrent worker processes.
    processes: usize,
    /// Wall-clock until every worker exited.
    wall_ms: f64,
}

/// The synthetic phase: `cells` cells with 1–4 trials each. Every trial
/// sleeps `sleep_floor_ms + seed % sleep_spread_ms` milliseconds — seeds
/// come from [`sefi_experiments::combo_seed`], so the latency profile is
/// identical across modes and thread counts.
struct Workload {
    cells: usize,
    sleep_floor_ms: u64,
    sleep_spread_ms: u64,
}

impl Workload {
    fn plans<'p>(&self, _pre: &'p Prebaked) -> Vec<CellPlan<'p>> {
        let (floor, spread) = (self.sleep_floor_ms, self.sleep_spread_ms);
        (0..self.cells)
            .map(|i| {
                let fw = FrameworkKind::all()[i % 3];
                let model = ModelKind::all()[i % 3];
                let trials = 1 + i % 4;
                CellPlan::new("bench", format!("cell-{i:02}"), fw, model, trials, move |_, seed| {
                    std::thread::sleep(Duration::from_millis(floor + seed % spread));
                    Ok(TrialOutcome::ok().with_accuracy((seed % 1000) as f64 / 1000.0))
                })
            })
            .collect()
    }
}

/// Render the phase's outcome table — the byte-identity artifact.
fn render(plans: &[CellPlan<'_>], pooled: &[Vec<TrialOutcome>]) -> String {
    let mut table = sefi_experiments::table::TextTable::new(&["Cell", "Trials", "Mean acc"]);
    for (plan, outcomes) in plans.iter().zip(pooled) {
        let mean = outcomes.iter().filter_map(|o| o.final_accuracy).sum::<f64>()
            / outcomes.len().max(1) as f64;
        table.row(vec![plan.cell().to_string(), plan.trials().to_string(), format!("{mean:.6}")]);
    }
    table.render()
}

fn set_threads(n: usize) {
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_campaign.json".to_string();
    let mut smoke = false;
    let mut assert_speedup: Option<f64> = None;
    let mut assert_trial_savings: Option<f64> = None;
    let mut worker_bin: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--smoke" => smoke = true,
            "--assert-speedup" => {
                i += 1;
                assert_speedup = Some(args[i].parse().expect("speedup factor"));
            }
            "--assert-trial-savings" => {
                i += 1;
                assert_trial_savings = Some(args[i].parse().expect("savings fraction"));
            }
            "--worker-bin" => {
                i += 1;
                worker_bin = Some(PathBuf::from(&args[i]));
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let workload = if smoke {
        Workload { cells: 16, sleep_floor_ms: 1, sleep_spread_ms: 5 }
    } else {
        Workload { cells: 24, sleep_floor_ms: 2, sleep_spread_ms: 11 }
    };
    let thread_counts = [1usize, 2, 4, 8];
    let max_threads = *thread_counts.last().unwrap();

    // No campaign: a manifest would serve the second run from cache and
    // benchmark the JSON reader instead of the scheduler.
    let pre = Prebaked::new(Budget::smoke());
    let plans = workload.plans(&pre);
    let total_trials: usize = plans.iter().map(|p| p.trials()).sum();
    println!("bench_campaign: {} cells, {} trials -> {out}", plans.len(), total_trials);

    // Warmup: first dispatch pays thread spawn + lazy init for both modes.
    set_threads(max_threads);
    let _ = pre.run_plan(&plans[..1]);

    // Baseline: one pool per cell, join between cells — the pre-plan-API
    // shape (parallel within a cell, barrier after it).
    let start = Instant::now();
    let barrier_pooled: Vec<Vec<TrialOutcome>> =
        plans.iter().flat_map(|p| pre.run_plan(std::slice::from_ref(p))).collect();
    let barrier_wall = start.elapsed().as_secs_f64() * 1e3;
    let reference_table = render(&plans, &barrier_pooled);
    println!("  barrier ({max_threads} threads)      {barrier_wall:>9.1} ms");

    let mut pool = Vec::new();
    let mut tables_identical = true;
    for &n in &thread_counts {
        set_threads(n);
        let start = Instant::now();
        let pooled = pre.run_plan(&plans);
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let identical = render(&plans, &pooled) == reference_table;
        tables_identical &= identical;
        println!(
            "  pool @ {n} thread{}       {wall:>9.1} ms  ({:.2}x{})",
            if n == 1 { " " } else { "s" },
            barrier_wall / wall,
            if identical { "" } else { ", TABLE MISMATCH" },
        );
        pool.push(PoolEntry { threads: n, wall_ms: wall, speedup_vs_barrier: barrier_wall / wall });
    }
    let speedup = pool.last().map(|p| p.speedup_vs_barrier).unwrap_or(0.0);

    // --- adaptive vs fixed on the real (smoke-budget) Figure 2 sweep ---
    set_threads(max_threads);
    let adaptive = {
        let pre = Prebaked::new(Budget::smoke());
        let rule = StoppingRule::halving(pre.budget().fig2_trainings, 0.7);
        let start = Instant::now();
        let (fixed_rows, _) = exp_bitranges::figure2(&pre);
        let fixed_wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let (adaptive_rows, _) = exp_bitranges::figure2_adaptive(&pre, rule);
        let adaptive_wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let fixed_trials: usize = fixed_rows.iter().map(|r| r.trainings).sum();
        let adaptive_trials: usize = adaptive_rows.iter().map(|r| r.trainings).sum();
        let verdicts_match = fixed_rows
            .iter()
            .zip(&adaptive_rows)
            .all(|(f, a)| (f.collapsed > 0) == (a.collapsed > 0))
            && exp_bitranges::collapse_only_with_critical_bit(&fixed_rows)
                == exp_bitranges::collapse_only_with_critical_bit(&adaptive_rows);
        let savings = 1.0 - adaptive_trials as f64 / fixed_trials.max(1) as f64;
        println!(
            "  adaptive fig2: {adaptive_trials} of {fixed_trials} fixed trials \
             ({:.0}% saved), verdicts match: {verdicts_match}",
            savings * 100.0
        );
        AdaptiveEntry {
            fixed_trials,
            adaptive_trials,
            savings,
            verdicts_match,
            fixed_wall_ms,
            adaptive_wall_ms,
        }
    };

    // --- sharded scaling: 1/2/4 worker processes over one results dir ---
    let worker = worker_bin.or_else(|| {
        let candidate = std::env::current_exe().ok()?.with_file_name("sefi-campaign-worker");
        candidate.exists().then_some(candidate)
    });
    let mut sharded = Vec::new();
    let mut sharded_identical = true;
    match worker {
        None => println!(
            "  sharded scaling skipped: sefi-campaign-worker not found \
             (build it or pass --worker-bin)"
        ),
        Some(worker) => {
            let scratch =
                std::env::temp_dir().join(format!("sefi_bench_sharded_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&scratch);
            let mut reference_csv: Option<String> = None;
            for processes in [1usize, 2, 4] {
                let dir = scratch.join(format!("{processes}proc"));
                std::fs::create_dir_all(&dir).expect("scratch dir");
                let start = Instant::now();
                let children: Vec<std::process::Child> = (0..processes)
                    .map(|w| {
                        std::process::Command::new(&worker)
                            .args(["--experiment", "fig2", "--budget", "smoke"])
                            .args(["--results-dir", &dir.display().to_string()])
                            .args(["--worker-id", &format!("w{w}")])
                            .args(["--wave", "2", "--ci-width", "0.7"])
                            .args(["--lease-ttl-ms", "4000", "--poll-ms", "25"])
                            .stdout(std::process::Stdio::null())
                            .stderr(std::process::Stdio::null())
                            .spawn()
                            .expect("spawn sefi-campaign-worker")
                    })
                    .collect();
                for mut child in children {
                    let status = child.wait().expect("worker exits");
                    assert!(status.success(), "worker process failed: {status}");
                }
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let csv = std::fs::read_to_string(dir.join("fig2_adaptive.csv"))
                    .expect("workers wrote the adaptive CSV");
                let identical = match &reference_csv {
                    None => {
                        reference_csv = Some(csv);
                        true
                    }
                    Some(reference) => *reference == csv,
                };
                sharded_identical &= identical;
                println!(
                    "  sharded @ {processes} proc{}    {wall_ms:>9.1} ms{}",
                    if processes == 1 { " " } else { "s" },
                    if identical { "" } else { "  CSV MISMATCH" },
                );
                sharded.push(ShardedEntry { processes, wall_ms });
            }
            let _ = std::fs::remove_dir_all(&scratch);
        }
    }

    let result = BenchFile {
        schema: 2,
        note: "per-cell-barrier fan-out vs campaign-wide work-stealing pool; \
               regenerate with `cargo run --release -p sefi-bench --bin bench_campaign`"
            .into(),
        host_threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        cells: plans.len(),
        total_trials,
        barrier_wall_ms: barrier_wall,
        pool,
        speedup,
        tables_identical,
        adaptive,
        sharded,
        sharded_identical,
    };
    let text = serde_json::to_string_pretty(&result).expect("serialize bench file");
    std::fs::write(&out, text + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("  pool speedup at {max_threads} threads: {speedup:.2}x; tables identical: {tables_identical}");

    if !tables_identical {
        eprintln!("  FAIL: rendered tables differ across modes/thread counts");
        std::process::exit(1);
    }
    if !result.sharded_identical {
        eprintln!("  FAIL: sharded CSVs differ across process counts");
        std::process::exit(1);
    }
    if !result.adaptive.verdicts_match {
        eprintln!("  FAIL: adaptive sweep flipped a fixed-budget collapse verdict");
        std::process::exit(1);
    }
    if let Some(want) = assert_speedup {
        let ok = speedup >= want;
        println!(
            "  assert speedup {speedup:.2} >= {want:.2} ... {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            std::process::exit(1);
        }
    }
    if let Some(want) = assert_trial_savings {
        let got = result.adaptive.savings;
        let ok = got >= want;
        println!(
            "  assert trial savings {got:.2} >= {want:.2} ... {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            std::process::exit(1);
        }
    }
}
