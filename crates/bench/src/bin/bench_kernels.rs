//! Standalone kernel-throughput benchmark (no Criterion): GEMM, conv2d
//! forward+backward, and full training epochs per model, written to a
//! machine-readable trajectory file at the repo root.
//!
//! Unlike the Criterion benches, this binary is meant to be run twice —
//! once with `--label before` on the previous kernels and once with
//! `--label after` on the current ones — merging both measurements into
//! `BENCH_kernels.json` so the perf trajectory of the hot path survives
//! across PRs. The kernel generation under test is selected by the
//! `SEFI_KERNELS` environment variable (`simd` default, `tiled` forces the
//! scalar blocked driver, `naive` the retained reference kernels). The
//! resolved mode, the microkernel ISA it dispatched to, and the detected
//! CPU features are recorded into the file so every number stays
//! attributable to the hardware and generation that produced it.
//!
//! Usage:
//!   bench_kernels --label before|after [--out PATH] [--smoke]
//!                 [--assert-speedup ENTRY:FACTOR]...

use sefi_data::{DataConfig, SyntheticCifar10};
use sefi_frameworks::{FrameworkKind, Session, SessionConfig};
use sefi_models::{ModelConfig, ModelKind};
use sefi_tensor::{
    active_isa_name, conv2d, conv2d_backward, cpu_features, kernel_mode, matmul, matmul_a_bt,
    matmul_at_b, ConvSpec, KernelMode, Tensor,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One benchmarked operation's before/after record. Zero means "not yet
/// measured" — the serde shim has no field-skipping, so sentinels keep the
/// file format trivial to merge.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// Stable entry identifier, e.g. `gemm_256`.
    name: String,
    /// Floating-point operations per iteration (0 for wall-clock-only rows).
    flops_per_iter: f64,
    /// Mean ns/iter measured with `--label before`.
    before_ns_per_iter: f64,
    /// GFLOP/s for the `before` measurement (0 if flops unknown).
    before_gflops: f64,
    /// Mean ns/iter measured with `--label after`.
    after_ns_per_iter: f64,
    /// GFLOP/s for the `after` measurement.
    after_gflops: f64,
    /// `before_ns / after_ns` once both sides exist, else 0.
    speedup: f64,
}

/// The on-disk trajectory file.
#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    /// File format version (2 added the kernel-generation/CPU metadata).
    schema: u32,
    /// What produced the numbers.
    note: String,
    /// Kernel generation (`simd`/`tiled`/`naive`) of the last run.
    kernel_mode: String,
    /// Microkernel ISA the last run dispatched to (`avx512`/`avx2`/
    /// `scalar` under `simd`; always `scalar` under `tiled`/`naive`).
    isa: String,
    /// Kernel-relevant CPU features detected on the last host.
    cpu_features: String,
    /// Hardware threads visible when the last label was written.
    host_threads: usize,
    /// All measured operations.
    entries: Vec<Entry>,
}

impl BenchFile {
    fn load_or_new(path: &str) -> BenchFile {
        match std::fs::read_to_string(path) {
            Ok(text) => serde_json::from_str(&text).unwrap_or_else(|e| {
                panic!("unparseable bench file {path}: {e}");
            }),
            Err(_) => BenchFile {
                schema: 2,
                note: "kernel throughput trajectory; regenerate with \
                       `cargo run --release -p sefi-bench --bin bench_kernels`"
                    .into(),
                kernel_mode: String::new(),
                isa: String::new(),
                cpu_features: String::new(),
                host_threads: 0,
                entries: Vec::new(),
            },
        }
    }

    fn record(&mut self, name: &str, flops: f64, ns: f64, label: Label) {
        let gflops = if flops > 0.0 { flops / ns } else { 0.0 };
        let entry = match self.entries.iter_mut().find(|e| e.name == name) {
            Some(e) => e,
            None => {
                self.entries.push(Entry {
                    name: name.into(),
                    flops_per_iter: flops,
                    before_ns_per_iter: 0.0,
                    before_gflops: 0.0,
                    after_ns_per_iter: 0.0,
                    after_gflops: 0.0,
                    speedup: 0.0,
                });
                self.entries.last_mut().unwrap()
            }
        };
        entry.flops_per_iter = flops;
        match label {
            Label::Before => {
                entry.before_ns_per_iter = ns;
                entry.before_gflops = gflops;
            }
            Label::After => {
                entry.after_ns_per_iter = ns;
                entry.after_gflops = gflops;
            }
        }
        entry.speedup = if entry.before_ns_per_iter > 0.0 && entry.after_ns_per_iter > 0.0 {
            entry.before_ns_per_iter / entry.after_ns_per_iter
        } else {
            0.0
        };
    }

    fn save(&self, path: &str) {
        let text = serde_json::to_string_pretty(self).expect("serialize bench file");
        std::fs::write(path, text + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    Before,
    After,
}

/// Mean ns/iter of `f`, timed until `min_total` has elapsed (at least
/// `min_iters`, at most `max_iters` runs) after one warmup call.
fn time_ns(min_total: Duration, min_iters: u64, max_iters: u64, mut f: impl FnMut()) -> f64 {
    f(); // warmup: page in buffers, trigger lazy init
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < max_iters && (iters < min_iters || start.elapsed() < min_total) {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Deterministic pseudo-random tensor (same values in every build).
fn fill(shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> =
        (0..n).map(|i| (((i.wrapping_mul(2654435761)) % 2000) as f32 - 1000.0) / 997.0).collect();
    Tensor::from_vec(data, shape)
}

struct Budget {
    gemm_time: Duration,
    conv_time: Duration,
    epoch_min_iters: u64,
    epoch_max_iters: u64,
}

fn data() -> SyntheticCifar10 {
    SyntheticCifar10::generate(DataConfig {
        train: 64,
        test: 32,
        image_size: 16,
        seed: 1,
        noise: 0.25,
    })
}

fn session(model: ModelKind) -> Session {
    let mut cfg = SessionConfig::new(FrameworkKind::Chainer, model, 1);
    cfg.model_config = ModelConfig { scale: 0.03, input_size: 16, num_classes: 10 };
    cfg.train.batch_size = 16;
    Session::new(cfg)
}

fn run_benches(file: &mut BenchFile, label: Label, budget: &Budget) {
    // Square GEMMs, including the acceptance-gate 256 point.
    for n in [128usize, 256, 512] {
        let a = fill(&[n, n]);
        let b = fill(&[n, n]);
        let flops = 2.0 * (n * n * n) as f64;
        let ns = time_ns(budget.gemm_time, 3, 10_000, || {
            std::hint::black_box(matmul(std::hint::black_box(&a), std::hint::black_box(&b)));
        });
        file.record(&format!("gemm_{n}"), flops, ns, label);
        println!("  gemm_{n:<14} {:>10.1} ns/iter  {:>7.2} GFLOP/s", ns, flops / ns);
    }

    // Ragged shape straddling every blocking boundary (m,n,k not multiples
    // of MR/NR/KC), so packing tails stay on the measured path.
    {
        let (m, k, n) = (201usize, 173usize, 95usize);
        let a = fill(&[m, k]);
        let b = fill(&[k, n]);
        let flops = 2.0 * (m * k * n) as f64;
        let ns = time_ns(budget.gemm_time, 3, 10_000, || {
            std::hint::black_box(matmul(std::hint::black_box(&a), std::hint::black_box(&b)));
        });
        file.record("gemm_ragged_201x173x95", flops, ns, label);
        println!("  gemm_ragged          {ns:>10.1} ns/iter  {:>7.2} GFLOP/s", flops / ns);
    }

    // Transposed variants at the training gradient shapes (Aᵀ·B is the
    // weight-gradient product, A·Bᵀ the dense forward / input-gradient one).
    {
        let n = 256usize;
        let a = fill(&[n, n]);
        let b = fill(&[n, n]);
        let flops = 2.0 * (n * n * n) as f64;
        let ns = time_ns(budget.gemm_time, 3, 10_000, || {
            std::hint::black_box(matmul_at_b(std::hint::black_box(&a), std::hint::black_box(&b)));
        });
        file.record("gemm_at_b_256", flops, ns, label);
        println!("  gemm_at_b_256        {ns:>10.1} ns/iter  {:>7.2} GFLOP/s", flops / ns);
        let ns = time_ns(budget.gemm_time, 3, 10_000, || {
            std::hint::black_box(matmul_a_bt(std::hint::black_box(&a), std::hint::black_box(&b)));
        });
        file.record("gemm_a_bt_256", flops, ns, label);
        println!("  gemm_a_bt_256        {ns:>10.1} ns/iter  {:>7.2} GFLOP/s", flops / ns);
    }

    // A VGG-ish conv layer, forward + backward (the per-step hot path; the
    // backward includes the im2col recompute that the workspace removes).
    {
        let x = fill(&[8, 16, 16, 16]);
        let w = fill(&[32, 16, 3, 3]);
        let bias = fill(&[32]);
        let spec = ConvSpec { stride: 1, pad: 1 };
        let out = conv2d(&x, &w, &bias, spec);
        let dout = fill(out.shape());
        // GEMM flops only (im2col/col2im/permutes ride along as overhead):
        // forward cols·Wᵀ plus backward dW and dX products.
        let rows = (8 * 16 * 16) as f64;
        let row_len = (16 * 3 * 3) as f64;
        let flops = 3.0 * 2.0 * rows * row_len * 32.0;
        let ns = time_ns(budget.conv_time, 3, 10_000, || {
            let y = conv2d(
                std::hint::black_box(&x),
                std::hint::black_box(&w),
                std::hint::black_box(&bias),
                spec,
            );
            std::hint::black_box(y);
            let g = conv2d_backward(
                std::hint::black_box(&x),
                std::hint::black_box(&w),
                std::hint::black_box(&dout),
                spec,
            );
            std::hint::black_box(g);
        });
        file.record("conv_fwd_bwd_8x16x16", flops, ns, label);
        println!("  conv_fwd_bwd         {ns:>10.1} ns/iter  {:>7.2} GFLOP/s", flops / ns);
    }

    // Full training epochs, one per model (wall-clock rows: flops = 0).
    let d = data();
    for model in ModelKind::all() {
        let ns =
            time_ns(Duration::from_secs(2), budget.epoch_min_iters, budget.epoch_max_iters, || {
                let mut s = session(model);
                std::hint::black_box(s.train_to(&d, 1));
            });
        file.record(&format!("train_epoch_{}", model.id()), 0.0, ns, label);
        println!("  train_epoch_{:<9} {:>12.0} ns/iter ({:.3} s)", model.id(), ns, ns / 1e9);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = None;
    let mut out = "BENCH_kernels.json".to_string();
    let mut smoke = false;
    let mut asserts: Vec<(String, f64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                i += 1;
                label = Some(match args[i].as_str() {
                    "before" => Label::Before,
                    "after" => Label::After,
                    other => panic!("--label must be before|after, got {other}"),
                });
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--smoke" => smoke = true,
            "--assert-speedup" => {
                i += 1;
                let (name, factor) =
                    args[i].split_once(':').expect("--assert-speedup ENTRY:FACTOR");
                asserts.push((name.to_string(), factor.parse().expect("speedup factor")));
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let label = label.expect("--label before|after is required");

    let budget = if smoke {
        Budget {
            gemm_time: Duration::from_millis(60),
            conv_time: Duration::from_millis(60),
            epoch_min_iters: 1,
            epoch_max_iters: 1,
        }
    } else {
        Budget {
            gemm_time: Duration::from_millis(600),
            conv_time: Duration::from_millis(600),
            epoch_min_iters: 3,
            epoch_max_iters: 8,
        }
    };

    let mode = match kernel_mode() {
        KernelMode::Simd => "simd",
        KernelMode::Tiled => "tiled",
        KernelMode::Naive => "naive",
    };
    let isa = if kernel_mode() == KernelMode::Simd { active_isa_name() } else { "scalar" };
    println!(
        "bench_kernels: label={label:?} kernels={mode} isa={isa} cpu={} smoke={smoke} -> {out}",
        cpu_features()
    );
    let mut file = BenchFile::load_or_new(&out);
    file.schema = 2;
    file.kernel_mode = mode.to_string();
    file.isa = isa.to_string();
    file.cpu_features = cpu_features().to_string();
    file.host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    run_benches(&mut file, label, &budget);
    file.save(&out);

    let mut failed = false;
    for (name, want) in &asserts {
        let got = file
            .entries
            .iter()
            .find(|e| &e.name == name)
            .unwrap_or_else(|| panic!("--assert-speedup: no entry {name}"))
            .speedup;
        let ok = got >= *want;
        println!(
            "  assert {name}: speedup {got:.2} >= {want:.2} ... {}",
            if ok { "ok" } else { "FAIL" }
        );
        failed |= !ok;
    }
    if failed {
        std::process::exit(1);
    }
}
