//! Benchmark support: shared fixtures for the Criterion benches.
//!
//! The benches live in `benches/`:
//! * `injector` — corruption throughput per mode/precision, plus the
//!   N-EV-threshold ablation (DESIGN.md §4.6).
//! * `checkpoint` — container encode/decode/save throughput.
//! * `training` — per-epoch training cost per model.
//! * `experiments` — one benchmark per paper table/figure, driving the
//!   experiment harness at micro scale.

use sefi_hdf5::{Dataset, Dtype, H5File};

/// A synthetic checkpoint with `entries` float values spread over several
/// datasets, mimicking a small model file.
pub fn synthetic_checkpoint(entries: usize, dtype: Dtype) -> H5File {
    let mut f = H5File::new();
    let per = (entries / 4).max(1);
    for (i, name) in ["conv1/W", "conv1/b", "fc/W", "fc/b"].iter().enumerate() {
        let values: Vec<f32> = (0..per).map(|k| (((k + i * 7) as f32) * 0.37).sin()).collect();
        f.create_dataset(
            &format!("model/{name}"),
            Dataset::from_f32(&values, &[per], dtype).unwrap(),
        )
        .unwrap();
    }
    f
}

/// A deeper checkpoint: `layers` conv-style layers of `per_layer` values
/// each (plus a bias per layer), mimicking a real model file where lazy
/// single-dataset access only needs a sliver of the payload.
pub fn layered_checkpoint(layers: usize, per_layer: usize, dtype: Dtype) -> H5File {
    let mut f = H5File::new();
    for l in 0..layers {
        let values: Vec<f32> =
            (0..per_layer).map(|k| (((k + l * 13) as f32) * 0.21).cos()).collect();
        f.create_dataset(
            &format!("model/layer{l}/W"),
            Dataset::from_f32(&values, &[per_layer], dtype).unwrap(),
        )
        .unwrap();
        f.create_dataset(
            &format!("model/layer{l}/b"),
            Dataset::from_f32(&[0.5; 8], &[8], dtype).unwrap(),
        )
        .unwrap();
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_has_requested_magnitude() {
        let f = synthetic_checkpoint(1000, Dtype::F64);
        assert_eq!(f.total_entries(), 1000);
        assert_eq!(f.dataset_paths().len(), 4);
    }

    #[test]
    fn layered_fixture_shape() {
        let f = layered_checkpoint(8, 100, Dtype::F32);
        assert_eq!(f.dataset_paths().len(), 16);
        assert_eq!(f.total_entries(), 8 * (100 + 8));
    }
}
