#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repo root; fails fast on the first broken gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (SEFI_KERNELS=simd) =="
# The full suite under the default vectorized kernel generation...
SEFI_KERNELS=simd cargo test --workspace -q

echo "== cargo test (SEFI_KERNELS=naive) =="
# ...and again under the retained naive reference: the lane-stable
# contract says both runs exercise bit-identical numerics, so any test
# that passes under one generation and fails under the other is a
# determinism bug, not flakiness.
SEFI_KERNELS=naive cargo test --workspace -q

echo "== kernel-mode campaign invariance =="
# The same smoke campaign under the simd and naive kernel generations
# must emit byte-identical tables — kernels are a speedup, never a
# numerical variation source (DESIGN.md §6).
kern_a="$(mktemp -d)"
kern_b="$(mktemp -d)"
SEFI_KERNELS=simd cargo run -q --release -p sefi-experiments --bin fig2_bit_ranges -- \
  --budget smoke --results-dir "$kern_a" > /dev/null
SEFI_KERNELS=naive cargo run -q --release -p sefi-experiments --bin fig2_bit_ranges -- \
  --budget smoke --results-dir "$kern_b" > /dev/null
cmp "$kern_a/fig2.csv" "$kern_b/fig2.csv"
rm -rf "$kern_a" "$kern_b"

echo "== kernel bench smoke =="
# Quick pass of the kernel benchmark harness against the committed "before"
# baselines (the scalar tiled kernels of PR 3): smoke-length measurements
# into a throwaway copy, with relaxed speedup floors as a regression
# tripwire. The committed BENCH_kernels.json carries the full-length runs,
# which clear ~3x on gemm_256/gemm_512 and ~2.6x on conv under the AVX-512
# microkernels. The GEMM/conv rows average hundreds of iterations even at
# smoke length, so they gate tightly; the epoch rows run a single iteration
# under --smoke (~50% warmup overhead) and are not gated — a broken simd
# dispatch shows up in the GEMM floors long before the epoch rows.
bench_dir="$(mktemp -d)"
cp BENCH_kernels.json "$bench_dir/bench.json"
cargo run -q --release -p sefi-bench --bin bench_kernels -- \
  --label after --smoke --out "$bench_dir/bench.json" \
  --assert-speedup gemm_256:2.4 --assert-speedup gemm_512:2.4 \
  --assert-speedup conv_fwd_bwd_8x16x16:2.0
rm -rf "$bench_dir"

echo "== checkpoint I/O bench smoke =="
# v2's indexed open + single-section read must beat a v1 full decode for
# single-tensor access even at smoke length (the committed BENCH_ckpt_io.json
# carries the full-length run, which clears ~18x; smoke allows 3x slack).
io_dir="$(mktemp -d)"
cargo run -q --release -p sefi-bench --bin bench_ckpt_io -- \
  --smoke --out "$io_dir/bench.json" --assert-lazy-speedup 3.0
rm -rf "$io_dir"

echo "== campaign scheduler bench smoke =="
# The work-stealing pool must beat the per-cell-barrier baseline even at
# smoke length, and every rendered table must be byte-identical across
# modes and worker counts (the bench exits non-zero on either failure).
# The committed BENCH_campaign.json carries the full-length run (~3.8x);
# smoke allows slack. The adaptive section must save >= 30% of the fixed
# Figure 2 trials without flipping a collapse verdict, and the sharded
# section (1/2/4 worker processes) must produce byte-identical CSVs.
camp_dir="$(mktemp -d)"
cargo build -q --release -p sefi-experiments --bin sefi-campaign-worker
cargo run -q --release -p sefi-bench --bin bench_campaign -- \
  --smoke --out "$camp_dir/bench.json" --assert-speedup 1.5 \
  --assert-trial-savings 0.30 --worker-bin target/release/sefi-campaign-worker
rm -rf "$camp_dir"

echo "== sharded adaptive campaign: kill -9 + resume =="
# A worker is SIGKILLed mid-run, leaving partial manifest shards (and
# possibly a held lease) in the shared results directory. Two relaunched
# concurrent workers must break anything stale, split the remaining waves
# between them via leases, and produce a CSV byte-identical to an
# unsharded single-process run.
worker_bin=target/release/sefi-campaign-worker
shard_solo="$(mktemp -d)"
shard_duo="$(mktemp -d)"
"$worker_bin" --experiment fig2 --budget smoke --results-dir "$shard_solo" \
  --worker-id solo --wave 2 --ci-width 0.7 > /dev/null
# Stage 1: the doomed worker.
"$worker_bin" --experiment fig2 --budget smoke --results-dir "$shard_duo" \
  --worker-id w1 --wave 2 --ci-width 0.7 --lease-ttl-ms 2000 --poll-ms 50 \
  > /dev/null &
shard_w1=$!
sleep 0.15
kill -9 "$shard_w1" 2> /dev/null || true
wait "$shard_w1" 2> /dev/null || true
# Stage 2: two fresh concurrent workers resume over the carcass; they must
# break any stale lease, split the remaining waves, and both converge.
"$worker_bin" --experiment fig2 --budget smoke --results-dir "$shard_duo" \
  --worker-id w2 --wave 2 --ci-width 0.7 --lease-ttl-ms 2000 --poll-ms 50 \
  > /dev/null &
shard_w2=$!
"$worker_bin" --experiment fig2 --budget smoke --results-dir "$shard_duo" \
  --worker-id w3 --wave 2 --ci-width 0.7 --lease-ttl-ms 2000 --poll-ms 50 \
  > /dev/null &
shard_w3=$!
wait "$shard_w2"
wait "$shard_w3"
cmp "$shard_solo/fig2_adaptive.csv" "$shard_duo/fig2_adaptive.csv"
rm -rf "$shard_solo" "$shard_duo"

echo "== scheduler determinism across worker counts =="
# The same smoke campaign at 2 and 8 workers must emit byte-identical
# rendered tables: trial seeds depend only on (framework, model, cell,
# trial), and outcomes are scattered back in trial-index order.
sched_a="$(mktemp -d)"
sched_b="$(mktemp -d)"
RAYON_NUM_THREADS=2 cargo run -q --release -p sefi-experiments --bin fig2_bit_ranges -- \
  --budget smoke --results-dir "$sched_a" > /dev/null
RAYON_NUM_THREADS=8 cargo run -q --release -p sefi-experiments --bin fig2_bit_ranges -- \
  --budget smoke --results-dir "$sched_b" > /dev/null
cmp "$sched_a/fig2.csv" "$sched_b/fig2.csv"
rm -rf "$sched_a" "$sched_b"

echo "== container mutation fuzz =="
# The shared harness: random byte mutations and truncations against all
# three container formats (v1, flat, v2) must error cleanly, never panic.
cargo test -q --release -p sefi-hdf5 --test fuzz_formats

echo "== smoke campaign: storage sweep =="
# The v2 storage sweep must observe all three outcome classes (masked /
# detected / silent), its verified loader must detect every single-bit flip,
# and a re-invocation must serve every trial from the manifest while
# rebuilding the identical table from recorded metrics.
storage_dir="$(mktemp -d)"
cargo run -q --release -p sefi-experiments --bin exp_storage -- \
  --budget smoke --results-dir "$storage_dir" > "$storage_dir/run1.log"
grep -q 'verified loader detects every flip: true' "$storage_dir/run1.log"
grep -q 'all outcome classes observed: true' "$storage_dir/run1.log"
cargo run -q --release -p sefi-experiments --bin exp_storage -- \
  --budget smoke --results-dir "$storage_dir" > "$storage_dir/run2.log"
grep -Eq 'storage +0 +144 +0' "$storage_dir/run2.log"
cmp <(grep -A5 'Region' "$storage_dir/run1.log") <(grep -A5 'Region' "$storage_dir/run2.log")
rm -rf "$storage_dir"

echo "== forensics CLI smoke =="
# The sefi-ckpt loop end to end: mint a fixture, protect it, flip one bit,
# assert scan flags the damage (exit 1), salvage repairs it via ECC, the
# repaired file scans clean (exit 0) and is bit-identical to the pristine
# checkpoint.
fx_dir="$(mktemp -d)"
cargo build -q --release -p sefi-experiments --bin sefi-ckpt
ckpt_bin=target/release/sefi-ckpt
"$ckpt_bin" mint "$fx_dir/ckpt.sefi5" --epoch 7 > /dev/null
"$ckpt_bin" protect "$fx_dir/ckpt.sefi5" > /dev/null
"$ckpt_bin" scan "$fx_dir/ckpt.sefi5" > /dev/null
cp "$fx_dir/ckpt.sefi5" "$fx_dir/pristine.sefi5"
fx_size=$(stat -c %s "$fx_dir/ckpt.sefi5")
fx_last=$(tail -c1 "$fx_dir/ckpt.sefi5" | od -An -tu1 | tr -d ' ')
printf "\\$(printf '%03o' $(( fx_last ^ 1 )))" \
  | dd of="$fx_dir/ckpt.sefi5" bs=1 seek=$((fx_size - 1)) conv=notrunc 2> /dev/null
fx_code=0; "$ckpt_bin" scan "$fx_dir/ckpt.sefi5" > "$fx_dir/scan.log" || fx_code=$?
test "$fx_code" -eq 1
grep -q 'DAMAGED' "$fx_dir/scan.log"
"$ckpt_bin" locate "$fx_dir/ckpt.sefi5" $((fx_size - 1)) | grep -q 'dataset'
fx_code=0
"$ckpt_bin" salvage "$fx_dir/ckpt.sefi5" --out "$fx_dir/repaired.sefi5" \
  > "$fx_dir/salvage.log" || fx_code=$?
test "$fx_code" -eq 1
grep -q 'ecc-corrected' "$fx_dir/salvage.log"
"$ckpt_bin" scan "$fx_dir/repaired.sefi5" > /dev/null
"$ckpt_bin" diff "$fx_dir/repaired.sefi5" "$fx_dir/pristine.sefi5" | grep -q 'identical'
RAYON_NUM_THREADS=4 "$ckpt_bin" scan --fleet "$fx_dir" > "$fx_dir/fleet.log" || true
grep -q 'repaired.sefi5: clean' "$fx_dir/fleet.log"
rm -rf "$fx_dir"

echo "== forensics bench smoke =="
# Quick pass of the forensics benchmark: its built-in checks (salvage
# restores pristine bytes; fleet verdicts identical at 1/2/4/8 workers)
# fail the run on violation.
forens_bench="$(mktemp -d)"
cargo run -q --release -p sefi-bench --bin bench_forensics -- \
  --smoke --out "$forens_bench/bench.json" > /dev/null
rm -rf "$forens_bench"

echo "== smoke campaign: forensics sweep =="
# The four-class sweep must show the headline results — the correcting
# loader repairs every single-bit payload flip, all four outcome classes
# (masked / detected / corrected / silent) appear — with byte-identical
# tables across worker counts, and a re-invocation must serve every trial
# from the manifest while rebuilding the identical table.
forens_dir="$(mktemp -d)"
RAYON_NUM_THREADS=2 cargo run -q --release -p sefi-experiments --bin exp_forensics -- \
  --budget smoke --results-dir "$forens_dir" > "$forens_dir/run1.log"
grep -q 'ecc loader corrects every payload flip: true' "$forens_dir/run1.log"
grep -q 'all outcome classes observed: true' "$forens_dir/run1.log"
forens_b="$(mktemp -d)"
RAYON_NUM_THREADS=8 cargo run -q --release -p sefi-experiments --bin exp_forensics -- \
  --budget smoke --results-dir "$forens_b" > /dev/null
cmp "$forens_dir/forensics.csv" "$forens_b/forensics.csv"
RAYON_NUM_THREADS=8 cargo run -q --release -p sefi-experiments --bin exp_forensics -- \
  --budget smoke --results-dir "$forens_dir" > "$forens_dir/run2.log"
grep -Eq 'forensics +0 +192 +0' "$forens_dir/run2.log"
cmp <(grep -A6 'Cell' "$forens_dir/run1.log") <(grep -A6 'Cell' "$forens_dir/run2.log")
rm -rf "$forens_dir" "$forens_b"

echo "== smoke campaign: cross-dtype equivalent injection =="
# The precision sweep (f16/bf16/f32/f64 × 6 strata) must show the headline
# exponent-width divergence (bf16's exp-msb N-EV rate strictly above
# f16's), with byte-identical tables across worker counts, and a
# re-invocation must serve all 144 trials from the manifest while
# rebuilding a byte-identical precision.csv.
prec_dir="$(mktemp -d)"
RAYON_NUM_THREADS=2 cargo run -q --release -p sefi-experiments --bin exp_precision -- \
  --budget smoke --results-dir "$prec_dir" > "$prec_dir/run1.log"
grep -q 'exponent-width divergence (bf16 exp-msb N-EV > f16): true' "$prec_dir/run1.log"
cp "$prec_dir/precision.csv" "$prec_dir/run1.csv"
prec_b="$(mktemp -d)"
RAYON_NUM_THREADS=8 cargo run -q --release -p sefi-experiments --bin exp_precision -- \
  --budget smoke --results-dir "$prec_b" > /dev/null
cmp "$prec_dir/precision.csv" "$prec_b/precision.csv"
rm -rf "$prec_b"
cargo run -q --release -p sefi-experiments --bin exp_precision -- \
  --budget smoke --results-dir "$prec_dir" > "$prec_dir/run2.log"
grep -Eq 'precision +0 +144 +0' "$prec_dir/run2.log"
cmp "$prec_dir/run1.csv" "$prec_dir/precision.csv"
cmp <(grep -A25 'Format' "$prec_dir/run1.log") <(grep -A25 'Format' "$prec_dir/run2.log")
rm -rf "$prec_dir"

echo "== precision bench smoke =="
# The per-dtype checkpoint footprint curve, with its size-floor tripwire:
# every format must cost at least elements × element_bytes on disk and the
# curve must be non-decreasing in element width (i8q <= f16 = bf16 <= f32
# <= f64).
prec_bench="$(mktemp -d)"
cargo run -q --release -p sefi-bench --bin bench_precision -- \
  --smoke --out "$prec_bench/bench.json" --assert-size-order > /dev/null
rm -rf "$prec_bench"

echo "== serving bench smoke =="
# Serving-path tripwires at smoke length: dynamic batching must clear 2x
# over batch=1 at 4 workers (the committed BENCH_serving.json full run
# clears ~8x) and the activation guards must cost < 5% per batch.
serve_bench="$(mktemp -d)"
cargo run -q --release -p sefi-bench --bin bench_serving -- \
  --smoke --out "$serve_bench/bench.json" \
  --assert-speedup 2.0 --assert-guard-overhead 5.0 > /dev/null
rm -rf "$serve_bench"

echo "== serving failover drill =="
# End to end over TCP: a clean server and a server whose replica-1 file
# carries an exponent-MSB flip serve the same deterministic load; the
# corrupted run must trip the guard, quarantine-reload via ECC, and still
# produce a byte-identical answers file. Telemetry must carry the trip,
# the reload, and the shutdown roll-up.
drill_dir="$(mktemp -d)"
cargo build -q --release -p sefi-serve --bin sefi-serve --bin sefi-loadgen
serve_bin=target/release/sefi-serve
loadgen_bin=target/release/sefi-loadgen
for variant in clean corrupt; do
  corrupt_args=""
  [ "$variant" = corrupt ] && corrupt_args="--corrupt-replica 1"
  "$serve_bin" --dir "$drill_dir/$variant" --requests 200 --port 0 \
    --port-file "$drill_dir/$variant.port" \
    --telemetry "$drill_dir/$variant.jsonl" $corrupt_args \
    > "$drill_dir/$variant.serve.log" 2>&1 &
  drill_pid=$!
  for _ in $(seq 1 300); do [ -s "$drill_dir/$variant.port" ] && break; sleep 0.1; done
  "$loadgen_bin" --port-file "$drill_dir/$variant.port" --requests 200 \
    --answers "$drill_dir/$variant.answers" > "$drill_dir/$variant.loadgen.log"
  wait "$drill_pid"
done
grep -q 'guard_trips=0' "$drill_dir/clean.serve.log"
grep -Eq 'guard_trips=[1-9]' "$drill_dir/corrupt.serve.log"
grep -Eq 'reloads=[1-9]' "$drill_dir/corrupt.serve.log"
grep -q 'GuardTrip' "$drill_dir/corrupt.jsonl"
grep -q 'ReplicaReload' "$drill_dir/corrupt.jsonl"
grep -q 'ServeEnd' "$drill_dir/corrupt.jsonl"
grep -q 'ServeEnd' "$drill_dir/clean.jsonl"
# The failover answered every request exactly as the clean pool did.
cmp "$drill_dir/clean.answers" "$drill_dir/corrupt.answers"
rm -rf "$drill_dir"

echo "== smoke campaign: serving sweep =="
# The served-accuracy sweep must show its headlines (rate-0 pool fully
# masked, guards firing at 16 flips/replica, no request lost), emit
# byte-identical CSVs across worker counts, and serve all 24 trials from
# the manifest on re-invocation while rebuilding the identical table.
srv_dir="$(mktemp -d)"
RAYON_NUM_THREADS=2 cargo run -q --release -p sefi-experiments --bin exp_serving -- \
  --budget smoke --results-dir "$srv_dir" > "$srv_dir/run1.log"
grep -q 'rate-0 pool all masked: true' "$srv_dir/run1.log"
grep -q 'guards fire at max rate: true' "$srv_dir/run1.log"
grep -q 'no request lost: true' "$srv_dir/run1.log"
srv_b="$(mktemp -d)"
RAYON_NUM_THREADS=8 cargo run -q --release -p sefi-experiments --bin exp_serving -- \
  --budget smoke --results-dir "$srv_b" > /dev/null
cmp "$srv_dir/serving.csv" "$srv_b/serving.csv"
RAYON_NUM_THREADS=8 cargo run -q --release -p sefi-experiments --bin exp_serving -- \
  --budget smoke --results-dir "$srv_dir" > "$srv_dir/run2.log"
grep -Eq 'serving +0 +24 +0' "$srv_dir/run2.log"
cmp <(grep -A6 'Flips/replica' "$srv_dir/run1.log") \
    <(grep -A6 'Flips/replica' "$srv_dir/run2.log")
rm -rf "$srv_dir" "$srv_b"

echo "== smoke campaign: fault isolation =="
# A deliberately failing trial (injected via the test-only SEFI_FAIL_TRIAL
# hook) must not kill the campaign: every other trial completes, the failure
# lands in the manifest and telemetry with its panic message, a plain re-run
# serves it from the manifest, and --retry-failed re-executes it cleanly.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
SEFI_FAIL_TRIAL='fig2:fig2-sign only [63,63]:0' \
  cargo run -q --release -p sefi-experiments --bin fig2_bit_ranges -- \
  --budget smoke --results-dir "$smoke_dir" > "$smoke_dir/run1.log"
grep -q '"status":"failed"' "$smoke_dir/fig2/manifest.jsonl"
grep -q 'injected test failure' "$smoke_dir/fig2/manifest.jsonl"
grep -q 'TrialFailed' "$smoke_dir/telemetry.jsonl"
grep -q 'failed:1' "$smoke_dir/run1.log"
# Resume without retrying: nothing re-executes, the failure is served.
cargo run -q --release -p sefi-experiments --bin fig2_bit_ranges -- \
  --budget smoke --results-dir "$smoke_dir" > "$smoke_dir/run2.log"
grep -Eq 'fig2 +0 +32 +1' "$smoke_dir/run2.log"
# Retry with the fault hook unset: exactly the failed trial re-runs, cleanly.
cargo run -q --release -p sefi-experiments --bin fig2_bit_ranges -- \
  --budget smoke --results-dir "$smoke_dir" --retry-failed > "$smoke_dir/run3.log"
grep -Eq 'fig2 +1 +31 +0' "$smoke_dir/run3.log"

echo "== CI green =="
