#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repo root; fails fast on the first broken gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== CI green =="
